//! The keyed, windowed three-way stream join (Flink substitute).
//!
//! State is keyed by `(user, item)` for impressions/actions and by `item`
//! for feature records. An action joins when both the matching impression
//! and the item's feature record have arrived; otherwise it waits in state.
//! Events may arrive out of order within the join window; state older than
//! the window is evicted on watermark advance, and actions that never joined
//! are counted as dropped (the paper's pipelines accept small loss).

use std::collections::HashMap;

use ips_metrics::Counter;
use ips_types::{CountVector, DurationMs, ProfileId, Timestamp};

use crate::events::{ActionEvent, FeatureEvent, ImpressionEvent, InstanceRecord, ItemId};

/// Join behaviour knobs.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// How long state waits for its counterparts before eviction.
    pub window: DurationMs,
    /// Number of count-vector attributes in emitted records.
    pub attributes: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            window: DurationMs::from_mins(10),
            attributes: 3,
        }
    }
}

#[derive(Default)]
struct PairState {
    impression: Option<ImpressionEvent>,
    pending_actions: Vec<ActionEvent>,
    last_update: Timestamp,
}

/// The join operator. Feed events in any order; collect emitted instances.
pub struct InstanceJoiner {
    config: JoinConfig,
    pairs: HashMap<(ProfileId, ItemId), PairState>,
    features: HashMap<ItemId, FeatureEvent>,
    watermark: Timestamp,
    pub emitted: Counter,
    pub dropped_actions: Counter,
    pub evicted_pairs: Counter,
}

impl InstanceJoiner {
    #[must_use]
    pub fn new(config: JoinConfig) -> Self {
        Self {
            config,
            pairs: HashMap::new(),
            features: HashMap::new(),
            watermark: Timestamp::ZERO,
            emitted: Counter::new(),
            dropped_actions: Counter::new(),
            evicted_pairs: Counter::new(),
        }
    }

    /// Feed one impression.
    pub fn push_impression(&mut self, ev: ImpressionEvent, out: &mut Vec<InstanceRecord>) {
        let state = self.pairs.entry((ev.user, ev.item)).or_default();
        state.impression = Some(ev);
        state.last_update = state.last_update.max(ev.at);
        self.try_emit(ev.user, ev.item, out);
    }

    /// Feed one feature record (per item; newer records replace older).
    pub fn push_feature(&mut self, ev: FeatureEvent, out: &mut Vec<InstanceRecord>) {
        self.features.insert(ev.item, ev);
        // A late feature record may unblock many pairs; scan only pairs of
        // this item (acceptable: feature cardinality ≪ pair cardinality).
        let users: Vec<ProfileId> = self
            .pairs
            .keys()
            .filter(|(_, item)| *item == ev.item)
            .map(|(u, _)| *u)
            .collect();
        for user in users {
            self.try_emit(user, ev.item, out);
        }
    }

    /// Feed one action.
    pub fn push_action(&mut self, ev: ActionEvent, out: &mut Vec<InstanceRecord>) {
        let state = self.pairs.entry((ev.user, ev.item)).or_default();
        state.pending_actions.push(ev);
        state.last_update = state.last_update.max(ev.at);
        self.try_emit(ev.user, ev.item, out);
    }

    fn try_emit(&mut self, user: ProfileId, item: ItemId, out: &mut Vec<InstanceRecord>) {
        let Some(feature) = self.features.get(&item).copied() else {
            return;
        };
        let Some(state) = self.pairs.get_mut(&(user, item)) else {
            return;
        };
        let Some(impression) = state.impression else {
            return;
        };
        for action in state.pending_actions.drain(..) {
            let mut counts = CountVector::zeros(self.config.attributes);
            if action.attribute < self.config.attributes {
                counts.set(action.attribute, 1);
            }
            out.push(InstanceRecord {
                user,
                item,
                at: action.at,
                slot: feature.slot,
                action_type: action.action,
                feature: feature.feature,
                counts,
                impression_at: impression.at,
            });
            self.emitted.inc();
        }
    }

    /// Advance the watermark: evict state older than the join window.
    /// Un-joined actions in evicted state are counted as dropped.
    pub fn advance_watermark(&mut self, to: Timestamp) {
        self.watermark = self.watermark.max(to);
        let cutoff = self.watermark.saturating_sub(self.config.window);
        let mut dropped = 0u64;
        let mut evicted = 0u64;
        self.pairs.retain(|_, state| {
            if state.last_update < cutoff {
                dropped += state.pending_actions.len() as u64;
                evicted += 1;
                false
            } else {
                true
            }
        });
        self.features.retain(|_, f| f.at >= cutoff);
        self.dropped_actions.add(dropped);
        self.evicted_pairs.add(evicted);
    }

    /// Live state sizes `(pairs, features)` — the memory the Flink job
    /// would hold.
    #[must_use]
    pub fn state_size(&self) -> (usize, usize) {
        (self.pairs.len(), self.features.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ImpressionSource;
    use ips_types::{ActionTypeId, FeatureId, SlotId};

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_millis(t)
    }

    fn imp(user: u64, item: ItemId, at: u64) -> ImpressionEvent {
        ImpressionEvent {
            user: ProfileId::new(user),
            item,
            at: ts(at),
            source: ImpressionSource::Server,
        }
    }

    fn act(user: u64, item: ItemId, at: u64) -> ActionEvent {
        ActionEvent {
            user: ProfileId::new(user),
            item,
            action: ActionTypeId::new(1),
            at: ts(at),
            attribute: 0,
        }
    }

    fn feat(item: ItemId, at: u64) -> FeatureEvent {
        FeatureEvent {
            item,
            slot: SlotId::new(7),
            action_type: ActionTypeId::new(1),
            feature: FeatureId::new(item * 100),
            at: ts(at),
        }
    }

    #[test]
    fn in_order_join_emits() {
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        j.push_feature(feat(5, 100), &mut out);
        j.push_impression(imp(1, 5, 110), &mut out);
        j.push_action(act(1, 5, 120), &mut out);
        assert_eq!(out.len(), 1);
        let rec = &out[0];
        assert_eq!(rec.user, ProfileId::new(1));
        assert_eq!(rec.feature, FeatureId::new(500));
        assert_eq!(rec.slot, SlotId::new(7));
        assert_eq!(rec.at, ts(120));
        assert_eq!(rec.impression_at, ts(110));
        assert_eq!(rec.counts.as_slice(), &[1, 0, 0]);
    }

    #[test]
    fn out_of_order_arrival_still_joins() {
        // Action first, then impression, then feature.
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        j.push_action(act(1, 5, 120), &mut out);
        assert!(out.is_empty());
        j.push_impression(imp(1, 5, 110), &mut out);
        assert!(out.is_empty(), "feature record still missing");
        j.push_feature(feat(5, 100), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn multiple_actions_per_impression() {
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        j.push_feature(feat(5, 100), &mut out);
        j.push_impression(imp(1, 5, 110), &mut out);
        for t in [120, 130, 140] {
            j.push_action(act(1, 5, t), &mut out);
        }
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn action_without_impression_never_emits() {
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        j.push_feature(feat(5, 100), &mut out);
        j.push_action(act(1, 5, 120), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn users_and_items_do_not_cross_join() {
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        j.push_feature(feat(5, 100), &mut out);
        j.push_feature(feat(6, 100), &mut out);
        j.push_impression(imp(1, 5, 110), &mut out);
        j.push_impression(imp(2, 6, 110), &mut out);
        j.push_action(act(1, 6, 120), &mut out); // user 1 acted on item 6, never shown
        assert!(out.is_empty());
        j.push_action(act(2, 6, 125), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].user, ProfileId::new(2));
    }

    #[test]
    fn watermark_evicts_and_counts_drops() {
        let mut j = InstanceJoiner::new(JoinConfig {
            window: DurationMs::from_secs(60),
            attributes: 3,
        });
        let mut out = Vec::new();
        // An action that will never join (no impression).
        j.push_action(act(1, 5, 1_000), &mut out);
        assert_eq!(j.state_size().0, 1);
        j.advance_watermark(ts(1_000 + 61_000));
        assert_eq!(j.state_size().0, 0);
        assert_eq!(j.dropped_actions.get(), 1);
        assert_eq!(j.evicted_pairs.get(), 1);
        // Late events after eviction start fresh state (no panic, no join).
        j.push_action(act(1, 5, 1_500), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn attribute_routing_one_hot() {
        let mut j = InstanceJoiner::new(JoinConfig {
            window: DurationMs::from_mins(10),
            attributes: 3,
        });
        let mut out = Vec::new();
        j.push_feature(feat(5, 100), &mut out);
        j.push_impression(imp(1, 5, 110), &mut out);
        j.push_action(
            ActionEvent {
                attribute: 2,
                ..act(1, 5, 120)
            },
            &mut out,
        );
        assert_eq!(out[0].counts.as_slice(), &[0, 0, 1]);
        // Attribute beyond configured width contributes an all-zero vector.
        j.push_action(
            ActionEvent {
                attribute: 9,
                ..act(1, 5, 121)
            },
            &mut out,
        );
        assert_eq!(out[1].counts.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn feature_arrival_unblocks_all_waiting_users() {
        let mut j = InstanceJoiner::new(JoinConfig::default());
        let mut out = Vec::new();
        for user in 1..=5u64 {
            j.push_impression(imp(user, 9, 100), &mut out);
            j.push_action(act(user, 9, 110), &mut out);
        }
        assert!(out.is_empty());
        j.push_feature(feat(9, 105), &mut out);
        assert_eq!(out.len(), 5, "one emission per waiting user");
    }
}
