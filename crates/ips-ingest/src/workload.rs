//! The synthetic recommendation workload.
//!
//! The paper's production numbers (Figs 16–19) come from Jinri Toutiao's
//! live traffic. The generator reproduces the traffic's structure rather
//! than its identity: Zipf-distributed user and item popularity, a diurnal
//! load curve with pronounced peaks, a ~10:1 read:write ratio, and the query
//! mix §II describes (top-K, filter and decay over a spread of window
//! sizes).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ips_core::query::{FilterPredicate, ProfileQuery};
use ips_types::config::DecayFunction;
use ips_types::{
    ActionTypeId, DurationMs, FeatureId, ProfileId, SlotId, TableId, TimeRange, Timestamp,
};

use crate::events::{
    ActionEvent, FeatureEvent, ImpressionEvent, ImpressionSource, InstanceRecord, ItemId,
};

/// Zipf(s) sampler over `1..=n` using the Gray et al. approximation (the
/// same scheme YCSB's `ZipfianGenerator` uses): an O(n) one-time
/// normalisation sum, then O(1) draws with no rejection loop.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfSampler {
    /// A sampler over `1..=n` with exponent `s > 0`. An exponent of exactly
    /// 1.0 is nudged slightly (the closed form divides by `1 - s`).
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf support must be non-empty");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let theta = if (s - 1.0).abs() < 1e-6 {
            1.0 + 1e-6
        } else {
            s
        };
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow_theta: 1.0 + 0.5f64.powf(theta),
        }
    }

    /// Draw one rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < self.half_pow_theta {
            return 2;
        }
        let k = 1 + (self.n as f64 * (self.eta.mul_add(u, 1.0 - self.eta)).powf(self.alpha)) as u64;
        k.clamp(1, self.n)
    }

    /// The configured exponent (after the s=1 nudge).
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.theta
    }
}

/// A 24-hour load curve: base load plus an evening peak, as the Spring
/// Festival traffic in Fig 16 shows (roughly sinusoidal with a sharp peak).
#[derive(Clone, Copy, Debug)]
pub struct DiurnalCurve {
    /// Load multiplier at the quietest hour (relative to peak = 1.0).
    pub trough: f64,
    /// Hour of day (0–24) at which the peak occurs.
    pub peak_hour: f64,
}

impl Default for DiurnalCurve {
    fn default() -> Self {
        Self {
            trough: 0.35,
            peak_hour: 21.0,
        }
    }
}

impl DiurnalCurve {
    /// The load multiplier (trough..=1.0) at a given instant.
    #[must_use]
    pub fn multiplier(&self, at: Timestamp) -> f64 {
        let hour = (at.as_millis() % 86_400_000) as f64 / 3_600_000.0;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        // Raised cosine: 1.0 at the peak hour, `trough` at the antipode.
        let raw = (phase.cos() + 1.0) / 2.0;
        self.trough + (1.0 - self.trough) * raw
    }
}

/// Relative frequency of the three read APIs plus their window spread.
#[derive(Clone, Debug)]
pub struct QueryMix {
    /// Weights for (top-K, filter, decay); normalized internally.
    pub topk_weight: f64,
    pub filter_weight: f64,
    pub decay_weight: f64,
    /// Candidate windows, sampled uniformly (the paper's flexible-window
    /// motivation: 5 minutes to 30 days).
    pub windows: Vec<DurationMs>,
    /// k values for top-K queries.
    pub k_choices: Vec<usize>,
}

impl Default for QueryMix {
    fn default() -> Self {
        Self {
            topk_weight: 0.6,
            filter_weight: 0.25,
            decay_weight: 0.15,
            windows: vec![
                DurationMs::from_mins(5),
                DurationMs::from_hours(1),
                DurationMs::from_days(1),
                DurationMs::from_days(7),
                DurationMs::from_days(30),
            ],
            k_choices: vec![1, 10, 50, 100],
        }
    }
}

/// Full workload parameterisation.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    pub table: TableId,
    pub users: u64,
    pub items: u64,
    /// Zipf exponent for user activity (1.01–1.2 is typical of consumer
    /// apps: a small cohort generates most traffic).
    pub user_zipf: f64,
    /// Zipf exponent for item popularity.
    pub item_zipf: f64,
    pub slots: u32,
    pub action_types: u32,
    pub attributes: usize,
    pub mix: QueryMix,
    pub diurnal: DiurnalCurve,
    /// Reads per write (the paper reports ~10:1).
    pub read_write_ratio: f64,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            table: TableId::new(1),
            users: 100_000,
            items: 1_000_000,
            user_zipf: 1.05,
            item_zipf: 1.1,
            slots: 8,
            action_types: 4,
            attributes: 3,
            mix: QueryMix::default(),
            diurnal: DiurnalCurve::default(),
            read_write_ratio: 10.0,
            seed: 0x1B5,
        }
    }
}

/// Stateful generator producing events and queries.
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    users: ZipfSampler,
    items: ZipfSampler,
    rng: SmallRng,
}

impl WorkloadGenerator {
    #[must_use]
    pub fn new(config: WorkloadConfig) -> Self {
        let users = ZipfSampler::new(config.users, config.user_zipf);
        let items = ZipfSampler::new(config.items, config.item_zipf);
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            config,
            users,
            items,
            rng,
        }
    }

    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draw a user id (Zipf-popular).
    pub fn sample_user(&mut self) -> ProfileId {
        ProfileId::new(self.users.sample(&mut self.rng))
    }

    /// Draw an item id (Zipf-popular).
    pub fn sample_item(&mut self) -> ItemId {
        self.items.sample(&mut self.rng)
    }

    /// The slot/action categorisation and feature id of an item are a
    /// deterministic function of the item (the content store's view).
    #[must_use]
    pub fn item_feature(&self, item: ItemId) -> FeatureEvent {
        let slot = SlotId::new((item % u64::from(self.config.slots)) as u32);
        let action_type =
            ActionTypeId::new((item / 7 % u64::from(self.config.action_types)) as u32);
        FeatureEvent {
            item,
            slot,
            action_type,
            feature: FeatureId::new(item),
            at: Timestamp::ZERO,
        }
    }

    /// Generate the raw event triple for one user interaction at `at`:
    /// an impression, a (maybe) action, and the item's feature record.
    pub fn interaction(
        &mut self,
        at: Timestamp,
    ) -> (ImpressionEvent, Option<ActionEvent>, FeatureEvent) {
        let user = self.sample_user();
        let item = self.sample_item();
        let impression = ImpressionEvent {
            user,
            item,
            at,
            source: if self.rng.gen_bool(0.5) {
                ImpressionSource::Server
            } else {
                ImpressionSource::Client
            },
        };
        // ~35% of impressions convert into an action a moment later.
        let action = self.rng.gen_bool(0.35).then(|| ActionEvent {
            user,
            item,
            action: ActionTypeId::new(self.rng.gen_range(0..self.config.action_types)),
            at: at.saturating_add(DurationMs::from_millis(self.rng.gen_range(50..5_000))),
            attribute: self.rng.gen_range(0..self.config.attributes),
        });
        let mut feature = self.item_feature(item);
        feature.at = at;
        (impression, action, feature)
    }

    /// Generate a ready-to-ingest instance record directly (bypassing the
    /// join; for harnesses that only need write traffic).
    pub fn instance(&mut self, at: Timestamp) -> InstanceRecord {
        let user = self.sample_user();
        let item = self.sample_item();
        let feature = self.item_feature(item);
        let attribute = self.rng.gen_range(0..self.config.attributes);
        let mut counts = ips_types::CountVector::zeros(self.config.attributes);
        counts.set(attribute, 1);
        InstanceRecord {
            user,
            item,
            at,
            slot: feature.slot,
            action_type: feature.action_type,
            feature: feature.feature,
            counts,
            impression_at: at.saturating_sub(DurationMs::from_secs(2)),
        }
    }

    /// Generate one query per the configured mix, against a Zipf-popular
    /// profile.
    pub fn query(&mut self, _at: Timestamp) -> ProfileQuery {
        let user = self.sample_user();
        let slot = SlotId::new(self.rng.gen_range(0..self.config.slots));
        let window = self.config.mix.windows[self.rng.gen_range(0..self.config.mix.windows.len())];
        let range = TimeRange::Current { lookback: window };
        let total = self.config.mix.topk_weight
            + self.config.mix.filter_weight
            + self.config.mix.decay_weight;
        let roll = self.rng.gen::<f64>() * total;
        if roll < self.config.mix.topk_weight {
            let k =
                self.config.mix.k_choices[self.rng.gen_range(0..self.config.mix.k_choices.len())];
            ProfileQuery::top_k(self.config.table, user, slot, range, k)
        } else if roll < self.config.mix.topk_weight + self.config.mix.filter_weight {
            ProfileQuery::filter(
                self.config.table,
                user,
                slot,
                range,
                FilterPredicate::MinAttribute {
                    attr: self.rng.gen_range(0..self.config.attributes),
                    min: 1,
                },
            )
        } else {
            ProfileQuery::decay(
                self.config.table,
                user,
                slot,
                range,
                DecayFunction::Exponential {
                    half_life: DurationMs::from_days(1),
                },
                1.0,
                20,
            )
        }
    }

    /// Is the next operation a read, per the read:write ratio?
    pub fn next_is_read(&mut self) -> bool {
        let p = self.config.read_write_ratio / (1.0 + self.config.read_write_ratio);
        self.rng.gen_bool(p)
    }

    /// Operations per tick at `at`, given a peak rate: the diurnal shape.
    #[must_use]
    pub fn rate_at(&self, at: Timestamp, peak_rate: f64) -> f64 {
        peak_rate * self.config.diurnal.multiplier(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::query::QueryKind;

    #[test]
    fn zipf_is_heavily_skewed() {
        let z = ZipfSampler::new(10_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut top10 = 0u64;
        let n = 50_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!((1..=10_000).contains(&r));
            if r <= 10 {
                top10 += 1;
            }
        }
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.3, "top-10 ranks should dominate, got {frac}");
    }

    #[test]
    fn zipf_rank_frequencies_are_monotonic() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u64; 101];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Compare coarse buckets (individual adjacent ranks are noisy).
        let head: u64 = counts[1..=5].iter().sum();
        let mid: u64 = counts[20..=24].iter().sum();
        let tail: u64 = counts[80..=84].iter().sum();
        assert!(
            head > mid && mid > tail,
            "head {head} mid {mid} tail {tail}"
        );
    }

    #[test]
    fn zipf_near_one_exponent() {
        let z = ZipfSampler::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=1_000).contains(&r));
        }
    }

    #[test]
    fn zipf_single_element_support() {
        let z = ZipfSampler::new(1, 1.2);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn diurnal_peak_and_trough() {
        let c = DiurnalCurve {
            trough: 0.3,
            peak_hour: 21.0,
        };
        let at_hour = |h: f64| Timestamp::from_millis((h * 3_600_000.0) as u64);
        let peak = c.multiplier(at_hour(21.0));
        let trough = c.multiplier(at_hour(9.0));
        assert!((peak - 1.0).abs() < 1e-6, "peak {peak}");
        assert!((trough - 0.3).abs() < 1e-6, "trough {trough}");
        assert!(c.multiplier(at_hour(15.0)) > trough);
        assert!(c.multiplier(at_hour(15.0)) < peak);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mk = || WorkloadGenerator::new(WorkloadConfig::default());
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.sample_user(), b.sample_user());
            assert_eq!(a.sample_item(), b.sample_item());
        }
    }

    #[test]
    fn query_mix_produces_all_kinds() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default());
        let (mut topk, mut filter, mut decay) = (0, 0, 0);
        for i in 0..1_000 {
            match g.query(Timestamp::from_millis(i)).kind {
                QueryKind::TopK { .. } => topk += 1,
                QueryKind::Filter { .. } => filter += 1,
                QueryKind::Decay { .. } => decay += 1,
            }
        }
        assert!(topk > filter && filter > decay, "{topk}/{filter}/{decay}");
        assert!(decay > 30, "all kinds present: {decay}");
    }

    #[test]
    fn read_write_ratio_holds() {
        let mut g = WorkloadGenerator::new(WorkloadConfig {
            read_write_ratio: 10.0,
            ..Default::default()
        });
        let reads = (0..10_000).filter(|_| g.next_is_read()).count();
        let ratio = reads as f64 / (10_000 - reads) as f64;
        assert!((7.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn interaction_events_are_consistent() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default());
        let at = Timestamp::from_millis(1_000_000);
        for _ in 0..100 {
            let (imp, action, feature) = g.interaction(at);
            assert_eq!(imp.item, feature.item);
            if let Some(a) = action {
                assert_eq!(a.user, imp.user);
                assert_eq!(a.item, imp.item);
                assert!(a.at >= imp.at);
            }
        }
    }

    #[test]
    fn item_categorisation_is_stable() {
        let g = WorkloadGenerator::new(WorkloadConfig::default());
        let f1 = g.item_feature(12345);
        let f2 = g.item_feature(12345);
        assert_eq!(f1.slot, f2.slot);
        assert_eq!(f1.feature, f2.feature);
        assert!(f1.slot.raw() < g.config().slots);
    }
}
