//! A partitioned, offset-addressed topic log (Kafka substitute).
//!
//! Joined instance records are "written to the corresponding Kafka topics
//! for downstream consumption" (§III-A); the ingestion job and the training
//! pipeline consume independently. This topic keeps records in memory,
//! partitions them by key, and tracks per-consumer-group offsets so
//! consumers can restart from where they left off.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use ips_metrics::Counter;

/// A partitioned append-only log of `T`.
pub struct Topic<T> {
    partitions: Vec<RwLock<Vec<Arc<T>>>>,
    pub appended: Counter,
}

impl<T> Topic<T> {
    /// A topic with `partitions` partitions (at least 1).
    #[must_use]
    pub fn new(partitions: usize) -> Arc<Self> {
        Arc::new(Self {
            partitions: (0..partitions.max(1))
                .map(|_| RwLock::new(Vec::new()))
                .collect(),
            appended: Counter::new(),
        })
    }

    /// Number of partitions.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Append a record with a partitioning key. Returns `(partition, offset)`.
    pub fn append(&self, key: u64, record: T) -> (usize, u64) {
        let p = (key % self.partitions.len() as u64) as usize;
        let mut partition = self.partitions[p].write();
        partition.push(Arc::new(record));
        self.appended.inc();
        (p, partition.len() as u64 - 1)
    }

    /// Records currently in partition `p` at or past `offset`, up to `max`.
    #[must_use]
    pub fn read(&self, p: usize, offset: u64, max: usize) -> Vec<Arc<T>> {
        let partition = self.partitions[p % self.partitions.len()].read();
        partition
            .iter()
            .skip(offset as usize)
            .take(max)
            .cloned()
            .collect()
    }

    /// The end offset (next offset to be written) of partition `p`.
    #[must_use]
    pub fn end_offset(&self, p: usize) -> u64 {
        self.partitions[p % self.partitions.len()].read().len() as u64
    }

    /// Total records across partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().len()).sum()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A consumer group: per-partition committed offsets over one topic.
pub struct ConsumerGroup<T> {
    topic: Arc<Topic<T>>,
    offsets: Mutex<Vec<u64>>,
    pub consumed: Counter,
}

impl<T> ConsumerGroup<T> {
    /// A group starting at the beginning of every partition.
    #[must_use]
    pub fn new(topic: Arc<Topic<T>>) -> Self {
        let n = topic.partitions();
        Self {
            topic,
            offsets: Mutex::new(vec![0; n]),
            consumed: Counter::new(),
        }
    }

    /// Poll up to `max` records across partitions, committing as it reads.
    pub fn poll(&self, max: usize) -> Vec<Arc<T>> {
        let mut out = Vec::new();
        let mut offsets = self.offsets.lock();
        let per_partition = max.div_ceil(offsets.len());
        for (p, offset) in offsets.iter_mut().enumerate() {
            if out.len() >= max {
                break;
            }
            let batch = self
                .topic
                .read(p, *offset, per_partition.min(max - out.len()));
            *offset += batch.len() as u64;
            self.consumed.add(batch.len() as u64);
            out.extend(batch);
        }
        out
    }

    /// Outstanding (unconsumed) records — consumer lag.
    #[must_use]
    pub fn lag(&self) -> u64 {
        let offsets = self.offsets.lock();
        offsets
            .iter()
            .enumerate()
            .map(|(p, o)| self.topic.end_offset(p).saturating_sub(*o))
            .sum()
    }

    /// Reset to the beginning (reprocessing after a restart without saved
    /// offsets).
    pub fn seek_to_start(&self) {
        for o in self.offsets.lock().iter_mut() {
            *o = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_round_trip() {
        let t: Arc<Topic<String>> = Topic::new(4);
        let (p, o) = t.append(42, "hello".into());
        assert_eq!(o, 0);
        let read = t.read(p, 0, 10);
        assert_eq!(read.len(), 1);
        assert_eq!(*read[0], "hello");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn same_key_same_partition_in_order() {
        let t: Arc<Topic<u64>> = Topic::new(4);
        for i in 0..10u64 {
            t.append(7, i);
        }
        let p = (7 % 4) as usize;
        let read: Vec<u64> = t.read(p, 0, 100).iter().map(|r| **r).collect();
        assert_eq!(read, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn consumer_group_polls_and_commits() {
        let t: Arc<Topic<u64>> = Topic::new(2);
        for i in 0..20u64 {
            t.append(i, i);
        }
        let g = ConsumerGroup::new(Arc::clone(&t));
        assert_eq!(g.lag(), 20);
        let first = g.poll(8);
        assert_eq!(first.len(), 8);
        assert_eq!(g.lag(), 12);
        let mut all: Vec<u64> = first.iter().map(|r| **r).collect();
        loop {
            let batch = g.poll(8);
            if batch.is_empty() {
                break;
            }
            all.extend(batch.iter().map(|r| **r));
        }
        assert_eq!(g.lag(), 0);
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        // No re-delivery.
        assert!(g.poll(8).is_empty());
    }

    #[test]
    fn independent_groups_see_everything() {
        let t: Arc<Topic<u64>> = Topic::new(2);
        for i in 0..10u64 {
            t.append(i, i);
        }
        let a = ConsumerGroup::new(Arc::clone(&t));
        let b = ConsumerGroup::new(Arc::clone(&t));
        assert_eq!(a.poll(100).len(), 10);
        assert_eq!(b.poll(100).len(), 10, "groups are independent");
    }

    #[test]
    fn seek_to_start_replays() {
        let t: Arc<Topic<u64>> = Topic::new(1);
        t.append(0, 5);
        let g = ConsumerGroup::new(Arc::clone(&t));
        assert_eq!(g.poll(10).len(), 1);
        g.seek_to_start();
        assert_eq!(g.poll(10).len(), 1);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let t: Arc<Topic<u64>> = Topic::new(4);
        let g = Arc::new(ConsumerGroup::new(Arc::clone(&t)));
        let producer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    t.append(i, i);
                }
            })
        };
        let consumer = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                let mut seen = 0;
                while seen < 10_000 {
                    seen += g.poll(256).len();
                }
                seen
            })
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 10_000);
        assert_eq!(g.lag(), 0);
    }
}
