//! The IPS ingestion job (the last Flink stage in Fig 5).
//!
//! Consumes instance records from the topic and writes them into IPS with
//! the configured extraction logic (here: the item's feature keyed under its
//! slot/action type). Tracks end-to-end freshness — event time to
//! IPS-visible time — which §III-A bounds at "usually within a minute".

use std::sync::Arc;

use ips_cluster::IpsClusterClient;
use ips_core::server::IpsInstance;
use ips_metrics::{Counter, Histogram};
use ips_types::{CallerId, Result, SharedClock, TableId};

use crate::events::InstanceRecord;
use crate::log::ConsumerGroup;

/// Anything instance records can be written into.
pub trait IngestSink: Send + Sync {
    fn ingest(&self, caller: CallerId, table: TableId, record: &InstanceRecord) -> Result<()>;
}

impl IngestSink for Arc<IpsInstance> {
    fn ingest(&self, caller: CallerId, table: TableId, record: &InstanceRecord) -> Result<()> {
        self.add_profile(
            caller,
            table,
            record.user,
            record.at,
            record.slot,
            record.action_type,
            record.feature,
            record.counts.clone(),
        )
    }
}

impl IngestSink for IpsClusterClient {
    fn ingest(&self, caller: CallerId, table: TableId, record: &InstanceRecord) -> Result<()> {
        self.add_profiles(
            caller,
            table,
            record.user,
            record.at,
            record.slot,
            record.action_type,
            &[(record.feature, record.counts.clone())],
        )
        .map(|_| ())
    }
}

/// The ingestion job: topic consumer → IPS writes, with freshness metrics.
pub struct IngestionJob<S> {
    group: ConsumerGroup<InstanceRecord>,
    sink: S,
    caller: CallerId,
    table: TableId,
    clock: SharedClock,
    pub ingested: Counter,
    pub failed: Counter,
    /// Event-time-to-ingest latency in milliseconds.
    pub freshness_ms: Histogram,
}

impl<S: IngestSink> IngestionJob<S> {
    #[must_use]
    pub fn new(
        group: ConsumerGroup<InstanceRecord>,
        sink: S,
        caller: CallerId,
        table: TableId,
        clock: SharedClock,
    ) -> Self {
        Self {
            group,
            sink,
            caller,
            table,
            clock,
            ingested: Counter::new(),
            failed: Counter::new(),
            freshness_ms: Histogram::new(),
        }
    }

    /// Consume and ingest up to `batch` records. Returns records processed.
    /// Failed writes are counted and dropped (the pipeline's at-most-once
    /// stance; the multi-region fan-out provides the redundancy).
    pub fn run_once(&self, batch: usize) -> usize {
        let records = self.group.poll(batch);
        let n = records.len();
        for record in records {
            match self.sink.ingest(self.caller, self.table, &record) {
                Ok(()) => {
                    self.ingested.inc();
                    let now = self.clock.now();
                    self.freshness_ms
                        .record(now.as_millis().saturating_sub(record.at.as_millis()));
                }
                Err(_) => self.failed.inc(),
            }
        }
        n
    }

    /// Drain the topic completely.
    pub fn run_to_completion(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.run_once(1024);
            total += n;
            if n == 0 {
                break;
            }
        }
        total
    }

    /// Consumer lag (records waiting in the topic).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.group.lag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Topic;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use ips_core::query::ProfileQuery;
    use ips_core::server::IpsInstanceOptions;
    use ips_types::clock::sim_clock;
    use ips_types::{DurationMs, SlotId, TableConfig, TimeRange, Timestamp};

    const TABLE: TableId = TableId(1);

    fn instance(clock: SharedClock) -> Arc<IpsInstance> {
        let i = IpsInstance::new_in_memory(IpsInstanceOptions::default(), clock);
        let mut cfg = TableConfig::new("t");
        cfg.isolation.enabled = false;
        i.create_table(TABLE, cfg).unwrap();
        i
    }

    #[test]
    fn records_flow_from_topic_to_queryable_profile() {
        let (clock, ctl) = sim_clock(Timestamp::from_millis(
            DurationMs::from_days(400).as_millis(),
        ));
        let inst = instance(Arc::clone(&clock));
        let topic = Topic::new(4);
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());

        // Produce 500 records at "now".
        let mut users = Vec::new();
        for _ in 0..500 {
            let rec = generator.instance(ctl_now(&ctl));
            users.push((rec.user, rec.slot));
            topic.append(rec.user.raw(), rec);
        }

        let job = IngestionJob::new(
            ConsumerGroup::new(Arc::clone(&topic)),
            Arc::clone(&inst),
            CallerId::new(1),
            TABLE,
            Arc::clone(&clock),
        );
        assert_eq!(job.lag(), 500);
        ctl.advance(DurationMs::from_secs(5)); // pipeline delay
        assert_eq!(job.run_to_completion(), 500);
        assert_eq!(job.lag(), 0);
        assert_eq!(job.ingested.get(), 500);

        // Freshness: all records ingested 5s after event time.
        let p50 = job.freshness_ms.percentile(50.0);
        assert!((4_000..7_000).contains(&p50), "freshness p50 {p50}");

        // Spot-check visibility.
        let (user, slot) = users[0];
        let q = ProfileQuery::top_k(TABLE, user, slot, TimeRange::last_days(1), 10);
        let r = inst.query(CallerId::new(1), &q).unwrap();
        assert!(!r.is_empty());
    }

    fn ctl_now(ctl: &ips_types::SimClock) -> Timestamp {
        use ips_types::Clock as _;
        ctl.now()
    }

    #[test]
    fn failed_writes_are_counted_not_retried() {
        let (clock, ctl) = sim_clock(Timestamp::from_millis(1_000_000));
        let inst = instance(Arc::clone(&clock));
        // Zero quota: every ingest fails terminally.
        inst.quota.set_quota(
            CallerId::new(9),
            ips_types::QuotaConfig {
                qps_limit: 0,
                burst_factor: 1.0,
            },
        );
        let topic = Topic::new(1);
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        for _ in 0..10 {
            let rec = generator.instance(ctl_now(&ctl));
            topic.append(rec.user.raw(), rec);
        }
        let job = IngestionJob::new(
            ConsumerGroup::new(Arc::clone(&topic)),
            Arc::clone(&inst),
            CallerId::new(9),
            TABLE,
            clock,
        );
        job.run_to_completion();
        assert_eq!(job.failed.get(), 10);
        assert_eq!(job.ingested.get(), 0);
    }

    #[test]
    fn run_once_respects_batch_size() {
        let (clock, ctl) = sim_clock(Timestamp::from_millis(1_000_000));
        let inst = instance(Arc::clone(&clock));
        let topic = Topic::new(1);
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        for _ in 0..100 {
            let rec = generator.instance(ctl_now(&ctl));
            topic.append(rec.user.raw(), rec);
        }
        let job = IngestionJob::new(
            ConsumerGroup::new(Arc::clone(&topic)),
            Arc::clone(&inst),
            CallerId::new(1),
            TABLE,
            clock,
        );
        assert_eq!(job.run_once(30), 30);
        assert_eq!(job.lag(), 70);
    }

    #[test]
    fn unknown_slot_queries_stay_empty() {
        // Sanity: ingestion writes only into the record's slot.
        let (clock, ctl) = sim_clock(Timestamp::from_millis(
            DurationMs::from_days(400).as_millis(),
        ));
        let inst = instance(Arc::clone(&clock));
        let topic = Topic::new(1);
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        let rec = generator.instance(ctl_now(&ctl));
        let user = rec.user;
        let slot = rec.slot;
        topic.append(rec.user.raw(), rec);
        let job = IngestionJob::new(
            ConsumerGroup::new(Arc::clone(&topic)),
            Arc::clone(&inst),
            CallerId::new(1),
            TABLE,
            clock,
        );
        job.run_to_completion();
        let empty_slot = SlotId::new(slot.raw() + 1_000);
        let q = ProfileQuery::top_k(TABLE, user, empty_slot, TimeRange::last_days(1), 10);
        assert!(inst.query(CallerId::new(1), &q).unwrap().is_empty());
    }
}
