//! Event types for the ingestion pipeline (§III-A).
//!
//! Three input streams feed the join: *impressions* (an item actually shown
//! to a user, server- or client-side), *actions* (what the user did), and
//! *feature records* (the item's categorical signals from backend services).
//! The join's output is the [`InstanceRecord`] — "basically a bag of
//! arbitrary key-value pairs" that both model training and IPS consume.

use ips_types::{ActionTypeId, CountVector, FeatureId, ProfileId, SlotId, Timestamp};

/// An item id. Items are the unit impressions/actions refer to; the feature
/// stream maps them to categorical features.
pub type ItemId = u64;

/// Where an impression was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImpressionSource {
    Server,
    Client,
}

/// An item was presented to a user.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImpressionEvent {
    pub user: ProfileId,
    pub item: ItemId,
    pub at: Timestamp,
    pub source: ImpressionSource,
}

/// A user acted on an item ('like', 'comment', 'share', 'click', ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionEvent {
    pub user: ProfileId,
    pub item: ItemId,
    pub action: ActionTypeId,
    pub at: Timestamp,
    /// Attribute index this action increments in the count vector (e.g.
    /// clicks = 0, likes = 1, shares = 2).
    pub attribute: usize,
}

/// Backend signals for an item: its categorisation and feature identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureEvent {
    pub item: ItemId,
    pub slot: SlotId,
    pub action_type: ActionTypeId,
    pub feature: FeatureId,
    pub at: Timestamp,
}

/// The joined training instance, ready for IPS ingestion.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceRecord {
    pub user: ProfileId,
    pub item: ItemId,
    /// Event time of the triggering action.
    pub at: Timestamp,
    pub slot: SlotId,
    pub action_type: ActionTypeId,
    pub feature: FeatureId,
    /// Count contribution (one-hot on the action's attribute by default).
    pub counts: CountVector,
    /// When the *impression* happened (training labels need it; also a
    /// freshness baseline).
    pub impression_at: Timestamp,
}

impl InstanceRecord {
    /// Rough serialized size, used by topic-lag and throughput accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<InstanceRecord>() + self.counts.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_record_size_accounting() {
        let rec = InstanceRecord {
            user: ProfileId::new(1),
            item: 2,
            at: Timestamp::from_millis(3),
            slot: SlotId::new(4),
            action_type: ActionTypeId::new(5),
            feature: FeatureId::new(6),
            counts: CountVector::single(1),
            impression_at: Timestamp::from_millis(2),
        };
        assert!(rec.approx_bytes() >= std::mem::size_of::<InstanceRecord>());
    }
}
