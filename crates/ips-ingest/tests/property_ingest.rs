//! Property-based tests on the ingestion substrate: Zipf sampler bounds and
//! skew, diurnal curve bounds, join completeness for in-window event
//! triples, and topic/consumer-group delivery exactly-once-per-group.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ips_ingest::events::{ActionEvent, FeatureEvent, ImpressionEvent, ImpressionSource};
use ips_ingest::{ConsumerGroup, DiurnalCurve, InstanceJoiner, JoinConfig, Topic, ZipfSampler};
use ips_types::{ActionTypeId, DurationMs, FeatureId, ProfileId, SlotId, Timestamp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zipf_samples_stay_in_support(
        n in 1u64..100_000,
        s in 0.5f64..2.5,
        seed in any::<u64>(),
    ) {
        let z = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r), "rank {r} outside 1..={n}");
        }
    }

    #[test]
    fn zipf_head_dominates_tail(seed in any::<u64>()) {
        let z = ZipfSampler::new(10_000, 1.2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..5_000 {
            let r = z.sample(&mut rng);
            if r <= 100 {
                head += 1;
            } else if r > 5_000 {
                tail += 1;
            }
        }
        prop_assert!(head > tail, "head {head} must dominate tail {tail}");
    }

    #[test]
    fn diurnal_multiplier_stays_in_band(
        trough in 0.01f64..0.99,
        peak_hour in 0.0f64..24.0,
        at in any::<u64>(),
    ) {
        let c = DiurnalCurve { trough, peak_hour };
        let m = c.multiplier(Timestamp::from_millis(at));
        prop_assert!(m >= trough - 1e-9 && m <= 1.0 + 1e-9, "multiplier {m}");
    }

    #[test]
    fn join_emits_exactly_complete_triples(
        // Items 0..10; per item choose which legs arrive.
        legs in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 1..30),
    ) {
        let mut joiner = InstanceJoiner::new(JoinConfig {
            window: DurationMs::from_days(1),
            attributes: 3,
        });
        let mut out = Vec::new();
        let mut expected = 0;
        for (item, (has_imp, has_act, has_feat)) in legs.iter().enumerate() {
            let item = item as u64;
            let user = ProfileId::new(item + 1);
            let at = Timestamp::from_millis(1_000 + item);
            if *has_feat {
                joiner.push_feature(
                    FeatureEvent {
                        item,
                        slot: SlotId::new(1),
                        action_type: ActionTypeId::new(1),
                        feature: FeatureId::new(item),
                        at,
                    },
                    &mut out,
                );
            }
            if *has_imp {
                joiner.push_impression(
                    ImpressionEvent {
                        user,
                        item,
                        at,
                        source: ImpressionSource::Server,
                    },
                    &mut out,
                );
            }
            if *has_act {
                joiner.push_action(
                    ActionEvent {
                        user,
                        item,
                        action: ActionTypeId::new(1),
                        at,
                        attribute: 0,
                    },
                    &mut out,
                );
            }
            if *has_imp && *has_act && *has_feat {
                expected += 1;
            }
        }
        prop_assert_eq!(out.len(), expected, "exactly the complete triples join");
    }

    #[test]
    fn topic_delivers_everything_exactly_once_per_group(
        records in proptest::collection::vec(any::<u64>(), 1..300),
        partitions in 1usize..8,
        batch in 1usize..64,
    ) {
        let topic: Arc<Topic<u64>> = Topic::new(partitions);
        for r in &records {
            topic.append(*r, *r);
        }
        let group = ConsumerGroup::new(Arc::clone(&topic));
        let mut seen = Vec::new();
        loop {
            let polled = group.poll(batch);
            if polled.is_empty() {
                break;
            }
            seen.extend(polled.iter().map(|r| **r));
        }
        prop_assert_eq!(group.lag(), 0);
        let mut expected = records.clone();
        expected.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(seen, expected);
        // Nothing re-delivered.
        prop_assert!(group.poll(batch).is_empty());
    }
}
