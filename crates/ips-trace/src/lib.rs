//! `ips-trace` — request-scoped distributed tracing for the IPS serving
//! path.
//!
//! The paper's headline serving claim (Table II) is a latency
//! *decomposition* — network overhead vs. cache-hit compute vs. cache-miss
//! HBase fetch. This crate measures that decomposition instead of asserting
//! it: every client request opens a root [`Span`], each stage it passes
//! through (dispatch, serialization, network, server queue, cache, KV
//! fetch, compute) opens a child span, and the [`SpanContext`] rides the
//! RPC wire so the server-side spans land in the *same* trace as the client
//! that issued the call — across endpoints, retries, and region failover.
//!
//! Design points:
//!
//! * **Deterministic IDs.** Trace/span IDs come from the injected
//!   [`ips_types::Clock`] plus per-tracer counters — no RNG, so simulated
//!   runs produce stable IDs.
//! * **RAII spans, ambient parenting.** A live span installs itself in a
//!   thread-local scope stack; [`child`] reads the top of that stack, so
//!   instrumented leaf code (cache, engine, persister) needs no tracer
//!   handle threaded through its signatures. Fan-out workers re-attach an
//!   explicitly captured context ([`Tracer::attach`]), and the RPC boundary
//!   masks the client's ambient scope ([`mask`]) so server spans can *only*
//!   parent through the wire-propagated context — exactly what a real
//!   multi-process deployment would see.
//! * **Lock-free collection.** Finished spans go to a per-thread SPSC ring
//!   drained by the [`TraceCollector`]; the record path takes no locks.
//! * **Head sampling with promotion.** The keep/drop decision is made at
//!   the root from a per-caller rate, but errored (and optionally slow)
//!   spans are promoted into the trace even when unsampled.
//! * **Two exporters** ([`export`]): chrome://tracing `trace_event` JSON
//!   (loadable in Perfetto) and a per-stage percentile table built on
//!   [`ips_metrics::Histogram`].

mod buffer;
mod collector;
pub mod export;

pub use collector::TraceCollector;

/// Canonical span-attribute keys for the request-lifecycle layer (deadline
/// shedding, hedged reads, degraded serving). One shared vocabulary keeps
/// client and server spans joinable by key.
pub mod attrs {
    /// Why a unit of work was shed: `"deadline"` or `"overload"`.
    pub const SHED: &str = "shed";
    /// Remaining deadline budget (µs) when a request was admitted.
    pub const DEADLINE_US: &str = "deadline_us";
    /// Present (`"true"`) on the attempt span of a hedged second read.
    pub const HEDGED: &str = "hedged";
    /// Present (`"true"`) when a result was served degraded (stale).
    pub const DEGRADED: &str = "degraded";
    /// Staleness (ms) of a degraded result.
    pub const STALENESS_MS: &str = "staleness_ms";
    /// Caller identity (raw id) a unit of work was performed for.
    pub const CALLER: &str = "caller";
    /// Scheduling priority label (`"interactive"` / `"normal"` / `"bulk"`).
    pub const PRIORITY: &str = "priority";
}

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ips_types::clock::SharedClock;

// ---------------------------------------------------------------------------
// Identifiers and context

/// Identity of one end-to-end request; shared by every span the request
/// touches, on every endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId(pub u64);

/// Identity of one span within a trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// The portable part of a span: what crosses the wire (and thread
/// boundaries) so remote/worker spans join the right tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanContext {
    pub trace: TraceId,
    pub span: SpanId,
    /// Head-sampling decision, made once at the root and propagated so
    /// every hop agrees on whether to record.
    pub sampled: bool,
}

// ---------------------------------------------------------------------------
// Records

/// One finished span, as drained from the collector.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub span: SpanId,
    /// `None` for the request root.
    pub parent: Option<SpanId>,
    /// Stage name (`"query"`, `"network"`, `"cache"`, ...). Static so the
    /// hot path never allocates for the common case.
    pub name: &'static str,
    /// Monotonic microseconds (see [`ips_types::clock::monotonic_micros`]);
    /// comparable across threads of one process.
    pub start_us: u64,
    pub end_us: u64,
    pub error: bool,
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up an attribute by key (first match).
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

// ---------------------------------------------------------------------------
// Sampling

/// Head-sampling policy. The keep/drop decision happens once, at
/// [`Tracer::root_span`], from a hash of the trace ID — deterministic for a
/// given ID, so reruns under the sim clock sample the same requests.
#[derive(Clone, Debug)]
pub struct SamplerConfig {
    /// Fraction of traces kept when the caller has no override (0.0–1.0).
    pub default_rate: f64,
    /// Per-caller overrides, keyed by the raw caller ID.
    pub per_caller: Vec<(u32, f64)>,
    /// Record spans that finished in error even when their trace was not
    /// head-sampled.
    pub sample_errors: bool,
    /// Record spans at least this slow even when not head-sampled.
    pub slow_us: Option<u64>,
}

impl SamplerConfig {
    /// Keep everything (benchmarks, tests).
    #[must_use]
    pub fn always() -> Self {
        Self::rate(1.0)
    }

    /// Keep a fraction of traces; errors and slow spans still promoted.
    #[must_use]
    pub fn rate(default_rate: f64) -> Self {
        Self {
            default_rate,
            per_caller: Vec::new(),
            sample_errors: true,
            slow_us: None,
        }
    }

    /// Record strictly nothing — the zero-overhead configuration used to
    /// bound tracing cost.
    #[must_use]
    pub fn never() -> Self {
        Self {
            default_rate: 0.0,
            per_caller: Vec::new(),
            sample_errors: false,
            slow_us: None,
        }
    }

    /// Builder-style per-caller override.
    #[must_use]
    pub fn with_caller_rate(mut self, caller: u32, rate: f64) -> Self {
        self.per_caller.push((caller, rate));
        self
    }

    /// Builder-style slow-span promotion threshold.
    #[must_use]
    pub fn with_slow_threshold_us(mut self, slow_us: u64) -> Self {
        self.slow_us = Some(slow_us);
        self
    }

    fn rate_for(&self, caller: u32) -> f64 {
        self.per_caller
            .iter()
            .find(|(c, _)| *c == caller)
            .map_or(self.default_rate, |(_, r)| *r)
    }

    fn decide(&self, trace: TraceId, caller: u32) -> bool {
        let rate = self.rate_for(caller);
        if rate >= 1.0 {
            return true;
        }
        if rate <= 0.0 {
            return false;
        }
        // splitmix64 of the trace ID → uniform in [0, 1).
        let mut z = trace.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

// ---------------------------------------------------------------------------
// Ambient scope stack

enum Scope {
    /// A live span (or an explicitly attached context) children should
    /// parent to.
    Active {
        tracer: Arc<Tracer>,
        ctx: SpanContext,
    },
    /// A boundary: ambient context deliberately hidden (RPC server side).
    Masked,
}

thread_local! {
    static SCOPES: RefCell<Vec<(u64, Scope)>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: Cell<u64> = const { Cell::new(1) };
}

/// Push a scope entry; the returned token (0 = not pushed, e.g. during
/// thread teardown) pops exactly this entry even if guards drop out of
/// order.
fn push_scope(scope: Scope) -> u64 {
    let token = NEXT_TOKEN
        .try_with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        })
        .unwrap_or(0);
    if token == 0 {
        return 0;
    }
    let pushed = SCOPES
        .try_with(|s| s.borrow_mut().push((token, scope)))
        .is_ok();
    if pushed {
        token
    } else {
        0
    }
}

fn pop_scope(token: u64) {
    if token == 0 {
        return;
    }
    let _ = SCOPES.try_with(|s| {
        let mut s = s.borrow_mut();
        if let Some(pos) = s.iter().rposition(|(t, _)| *t == token) {
            s.remove(pos);
        }
    });
}

/// The tracer and context children on this thread would parent to, unless
/// the top of the scope stack is a mask.
#[must_use]
pub fn current() -> Option<(Arc<Tracer>, SpanContext)> {
    SCOPES
        .try_with(|s| match s.borrow().last() {
            Some((_, Scope::Active { tracer, ctx })) => Some((Arc::clone(tracer), *ctx)),
            _ => None,
        })
        .ok()
        .flatten()
}

/// Open a child of the ambient span. A no-op [`Span`] (nothing recorded,
/// ~one thread-local read) when no tracer is ambient — instrumented code
/// pays essentially nothing while tracing is not set up.
#[must_use]
pub fn child(name: &'static str) -> Span {
    match current() {
        Some((tracer, ctx)) => tracer.span_with_parent(name, ctx),
        None => Span::disabled(),
    }
}

/// Record a *modeled* cost (simulated network / KV latency that was never
/// actually slept) as a fixed-duration child of the ambient span. The span
/// is marked `modeled=true` so exporters can distinguish simulated from
/// measured time.
pub fn record_modeled(name: &'static str, duration_us: u64) {
    if let Some((tracer, ctx)) = current() {
        if ctx.sampled {
            let start = tracer.clock.monotonic_micros();
            tracer.collector.record(SpanRecord {
                trace: ctx.trace,
                span: tracer.next_span_id(),
                parent: Some(ctx.span),
                name,
                start_us: start,
                end_us: start.saturating_add(duration_us),
                error: false,
                attrs: vec![("modeled", "true".to_string())],
            });
        }
    }
}

/// Hide the ambient context until the guard drops. Used at the RPC
/// boundary: the in-process "server side" must see only the
/// wire-propagated context, as a remote process would.
#[must_use]
pub fn mask() -> MaskGuard {
    MaskGuard {
        token: push_scope(Scope::Masked),
    }
}

/// Guard for [`mask`].
pub struct MaskGuard {
    token: u64,
}

impl Drop for MaskGuard {
    fn drop(&mut self) {
        pop_scope(self.token);
    }
}

/// Guard for [`Tracer::attach`].
pub struct ContextGuard {
    token: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_scope(self.token);
    }
}

// ---------------------------------------------------------------------------
// Tracer

/// Span factory + sampling policy + collector, shared via `Arc`.
pub struct Tracer {
    clock: SharedClock,
    config: SamplerConfig,
    collector: TraceCollector,
    next_trace: AtomicU64,
    next_span: AtomicU64,
}

impl Tracer {
    #[must_use]
    pub fn new(clock: SharedClock, config: SamplerConfig) -> Arc<Self> {
        Arc::new(Self {
            clock,
            config,
            collector: TraceCollector::new(),
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
        })
    }

    /// Start a new trace: mints a [`TraceId`], makes the head-sampling
    /// decision for `caller`, and opens the root span.
    #[must_use]
    pub fn root_span(self: &Arc<Self>, name: &'static str, caller: u32) -> Span {
        let trace = self.next_trace_id();
        let sampled = self.config.decide(trace, caller);
        self.start_span(name, trace, None, sampled)
    }

    /// Open a span under an existing context — the entry point for both
    /// ambient children and the RPC server side (where `parent` came off
    /// the wire).
    #[must_use]
    pub fn span_with_parent(self: &Arc<Self>, name: &'static str, parent: SpanContext) -> Span {
        self.start_span(name, parent.trace, Some(parent.span), parent.sampled)
    }

    /// Make `ctx` ambient on this thread until the guard drops — how
    /// fan-out worker threads join the trace of the request that spawned
    /// them (thread-locals do not cross `thread::scope`).
    #[must_use]
    pub fn attach(self: &Arc<Self>, ctx: SpanContext) -> ContextGuard {
        ContextGuard {
            token: push_scope(Scope::Active {
                tracer: Arc::clone(self),
                ctx,
            }),
        }
    }

    /// Drain all finished spans collected so far.
    #[must_use]
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.collector.drain()
    }

    /// Spans lost to full per-thread rings (collector drained too rarely).
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        self.collector.dropped()
    }

    #[must_use]
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    #[must_use]
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Trace IDs carry the logical clock (ms) in the high bits and a
    /// per-tracer counter in the low 20, so IDs are unique, roughly
    /// time-ordered, and deterministic under the sim clock.
    fn next_trace_id(&self) -> TraceId {
        let ms = self.clock.now().as_millis();
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        TraceId((ms << 20) | (n & 0xF_FFFF))
    }

    fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn start_span(
        self: &Arc<Self>,
        name: &'static str,
        trace: TraceId,
        parent: Option<SpanId>,
        sampled: bool,
    ) -> Span {
        let span = self.next_span_id();
        let start = self.clock.monotonic_micros();
        let token = push_scope(Scope::Active {
            tracer: Arc::clone(self),
            ctx: SpanContext {
                trace,
                span,
                sampled,
            },
        });
        Span {
            inner: Some(Box::new(SpanInner {
                tracer: Arc::clone(self),
                sampled,
                token,
                rec: SpanRecord {
                    trace,
                    span,
                    parent,
                    name,
                    start_us: start,
                    end_us: start,
                    error: false,
                    attrs: Vec::new(),
                },
            })),
        }
    }

    /// Keep-or-drop for a finished span: head decision, plus promotion of
    /// errored / slow spans.
    fn record_finished(&self, rec: SpanRecord, sampled: bool) {
        let keep = sampled
            || (rec.error && self.config.sample_errors)
            || self.config.slow_us.is_some_and(|t| rec.duration_us() >= t);
        if keep {
            self.collector.record(rec);
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("config", &self.config)
            .field("collector", &self.collector)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Span

/// RAII guard for one unit of attributed work. While alive it is the
/// ambient parent for [`child`] spans on this thread; on drop it records
/// its timing into the collector (subject to sampling).
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

struct SpanInner {
    tracer: Arc<Tracer>,
    sampled: bool,
    token: u64,
    rec: SpanRecord,
}

impl Span {
    /// A span that records nothing and has no context — the zero-cost path
    /// when tracing is off.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this span will (absent promotion) be recorded.
    #[must_use]
    pub fn is_sampled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sampled)
    }

    /// The context to propagate (on the wire, or to a worker thread).
    #[must_use]
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|i| SpanContext {
            trace: i.rec.trace,
            span: i.rec.span,
            sampled: i.sampled,
        })
    }

    /// Attach a key/value attribute.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.rec.attrs.push((key, value.into()));
        }
    }

    /// Mark the span failed; errored spans are recorded even when their
    /// trace was not head-sampled (if the sampler promotes errors).
    pub fn set_error(&mut self, message: impl Into<String>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.rec.error = true;
            inner.rec.attrs.push(("error", message.into()));
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Span({} {}/{})", i.rec.name, i.rec.trace, i.rec.span),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let SpanInner {
                tracer,
                sampled,
                token,
                mut rec,
            } = *inner;
            pop_scope(token);
            rec.end_us = tracer.clock.monotonic_micros();
            tracer.record_finished(rec, sampled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_types::clock::system_clock;

    fn tracer(cfg: SamplerConfig) -> Arc<Tracer> {
        Tracer::new(system_clock(), cfg)
    }

    #[test]
    fn root_and_children_form_one_tree() {
        let t = tracer(SamplerConfig::always());
        {
            let root = t.root_span("query", 7);
            let root_ctx = root.context().unwrap();
            {
                let mut a = child("cache");
                a.set_attr("hit", "true");
                assert_eq!(a.context().unwrap().trace, root_ctx.trace);
            }
            let _b = child("compute");
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 3);
        let root = recs.iter().find(|r| r.name == "query").unwrap();
        assert!(root.parent.is_none());
        for name in ["cache", "compute"] {
            let c = recs.iter().find(|r| r.name == name).unwrap();
            assert_eq!(c.parent, Some(root.span), "{name} parents to root");
            assert_eq!(c.trace, root.trace);
        }
        assert_eq!(
            recs.iter().find(|r| r.name == "cache").unwrap().attr("hit"),
            Some("true")
        );
    }

    #[test]
    fn nested_children_parent_to_innermost() {
        let t = tracer(SamplerConfig::always());
        {
            let _root = t.root_span("query", 0);
            let mid = child("server");
            let leaf = child("compute");
            drop(leaf);
            drop(mid);
        }
        let recs = t.drain();
        let mid = recs.iter().find(|r| r.name == "server").unwrap();
        let leaf = recs.iter().find(|r| r.name == "compute").unwrap();
        assert_eq!(leaf.parent, Some(mid.span));
    }

    #[test]
    fn child_without_ambient_tracer_is_noop() {
        let mut s = child("orphan");
        s.set_attr("k", "v");
        assert!(s.context().is_none());
        assert!(!s.is_sampled());
    }

    #[test]
    fn sampling_never_records_nothing() {
        let t = tracer(SamplerConfig::never());
        {
            let _root = t.root_span("query", 0);
            let _c = child("cache");
        }
        assert!(t.drain().is_empty());
    }

    #[test]
    fn error_spans_promoted_when_unsampled() {
        let t = tracer(SamplerConfig::rate(0.0));
        {
            let _root = t.root_span("query", 0);
            let mut c = child("attempt");
            c.set_error("endpoint down");
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 1, "only the errored span is promoted");
        assert_eq!(recs[0].name, "attempt");
        assert!(recs[0].error);
        assert_eq!(recs[0].attr("error"), Some("endpoint down"));
    }

    #[test]
    fn never_config_suppresses_even_errors() {
        let t = tracer(SamplerConfig::never());
        {
            let mut root = t.root_span("query", 0);
            root.set_error("boom");
        }
        assert!(t.drain().is_empty());
    }

    #[test]
    fn slow_spans_promoted_when_unsampled() {
        let t = tracer(SamplerConfig::rate(0.0).with_slow_threshold_us(0));
        {
            let _root = t.root_span("query", 0);
        }
        assert_eq!(t.drain().len(), 1, "threshold 0 promotes everything");
    }

    #[test]
    fn per_caller_rate_overrides_default() {
        let cfg = SamplerConfig::rate(1.0).with_caller_rate(42, 0.0);
        let t = tracer(cfg);
        {
            let _a = t.root_span("query", 7);
        }
        {
            let _b = t.root_span("query", 42);
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 1, "caller 42 sampled out");
    }

    #[test]
    fn fractional_rate_is_deterministic_per_trace_id() {
        let cfg = SamplerConfig::rate(0.5);
        for id in [1u64, 99, 12345, u64::MAX / 3] {
            let a = cfg.decide(TraceId(id), 0);
            let b = cfg.decide(TraceId(id), 0);
            assert_eq!(a, b);
        }
        // And roughly calibrated.
        let kept = (0..10_000u64)
            .filter(|i| cfg.decide(TraceId(i * 0x9E37_79B9), 0))
            .count();
        assert!((4_000..6_000).contains(&kept), "kept {kept}/10000 at 50%");
    }

    #[test]
    fn mask_hides_ambient_context() {
        let t = tracer(SamplerConfig::always());
        {
            let _root = t.root_span("query", 0);
            assert!(current().is_some());
            {
                let _m = mask();
                assert!(current().is_none(), "masked");
                let s = child("behind-mask");
                assert!(s.context().is_none());
            }
            assert!(current().is_some(), "unmasked after guard drop");
        }
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn attach_joins_worker_thread_to_trace() {
        let t = tracer(SamplerConfig::always());
        let root = t.root_span("query_batch", 0);
        let ctx = root.context().unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let _g = t.attach(ctx);
                    let _w = child("frame");
                });
            }
        });
        drop(root);
        let recs = t.drain();
        assert_eq!(recs.len(), 4);
        let root_rec = recs.iter().find(|r| r.name == "query_batch").unwrap();
        for f in recs.iter().filter(|r| r.name == "frame") {
            assert_eq!(f.parent, Some(root_rec.span));
            assert_eq!(f.trace, root_rec.trace);
        }
    }

    #[test]
    fn out_of_order_drop_keeps_stack_consistent() {
        let t = tracer(SamplerConfig::always());
        let _root = t.root_span("r", 0);
        let a = child("a");
        let b = child("b");
        drop(a); // dropped before b — token-based pop must remove `a` only
        let c = child("c");
        drop(c);
        drop(b);
        let recs: Vec<_> = t.drain();
        let b_rec = recs.iter().find(|r| r.name == "b").unwrap();
        let c_rec = recs.iter().find(|r| r.name == "c").unwrap();
        assert_eq!(c_rec.parent, Some(b_rec.span), "c parents to b, not a");
    }

    #[test]
    fn record_modeled_attaches_fixed_duration_child() {
        let t = tracer(SamplerConfig::always());
        {
            let _root = t.root_span("query", 0);
            record_modeled("network", 1_234);
        }
        let recs = t.drain();
        let net = recs.iter().find(|r| r.name == "network").unwrap();
        assert_eq!(net.duration_us(), 1_234);
        assert_eq!(net.attr("modeled"), Some("true"));
        assert!(net.parent.is_some());
    }

    #[test]
    fn record_modeled_is_noop_when_unsampled() {
        let t = tracer(SamplerConfig::rate(0.0));
        {
            let _root = t.root_span("query", 0);
            record_modeled("network", 500);
        }
        assert!(t.drain().is_empty());
    }

    #[test]
    fn trace_ids_unique_and_time_prefixed() {
        let (clock, _ctl) = ips_types::clock::sim_clock(ips_types::time::Timestamp::from_millis(5));
        let t = Tracer::new(clock, SamplerConfig::always());
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.0 >> 20, 5, "logical ms in the high bits");
    }
}
