//! Exporters: chrome://tracing JSON and a per-stage percentile table.
//!
//! The JSON exporter emits the `trace_event` format (an object with a
//! `traceEvents` array of `ph:"X"` complete events) that chrome://tracing
//! and Perfetto load directly. Each trace is mapped to its own `tid` row so
//! a multi-request dump reads as parallel swimlanes; span attributes and
//! IDs land in `args`.
//!
//! The table exporter folds span durations into one
//! [`ips_metrics::Histogram`] per stage name and renders percentiles — the
//! machinery behind the measured Table II decomposition.

use std::fmt::Write as _;

use ips_metrics::{Histogram, HistogramSnapshot};

use crate::{SpanRecord, TraceId};

/// Serialize records to chrome://tracing / Perfetto `trace_event` JSON.
#[must_use]
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut lanes: Vec<TraceId> = Vec::new();
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, rec) in records.iter().enumerate() {
        let tid = match lanes.iter().position(|t| *t == rec.trace) {
            Some(p) => p,
            None => {
                lanes.push(rec.trace);
                lanes.len() - 1
            }
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ips\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            escape_json(rec.name),
            rec.start_us,
            rec.duration_us(),
            tid
        );
        let _ = write!(
            out,
            ",\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"",
            rec.trace, rec.span
        );
        if let Some(parent) = rec.parent {
            let _ = write!(out, ",\"parent\":\"{parent}\"");
        }
        if rec.error {
            out.push_str(",\"error\":true");
        }
        for (k, v) in &rec.attrs {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-stage duration histograms, keyed by span name in first-seen order.
#[derive(Default)]
pub struct StageBreakdown {
    // lint: allow(metrics-coverage, reason = "recorded indirectly via stage_mut(); stage keys are dynamic span names, not fixed fields")
    stages: Vec<(String, Histogram)>,
}

impl StageBreakdown {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration under `stage`.
    pub fn record(&mut self, stage: &str, duration_us: u64) {
        self.stage_mut(stage).record(duration_us);
    }

    /// Record a span's duration under its name.
    pub fn record_span(&mut self, rec: &SpanRecord) {
        self.record(rec.name, rec.duration_us());
    }

    pub fn record_all<'a>(&mut self, recs: impl IntoIterator<Item = &'a SpanRecord>) {
        for rec in recs {
            self.record_span(rec);
        }
    }

    /// Fold an externally collected histogram (e.g. one per endpoint) into
    /// a stage via [`Histogram::merge`].
    pub fn merge(&mut self, stage: &str, snapshot: &HistogramSnapshot) {
        self.stage_mut(stage).merge(snapshot);
    }

    fn stage_mut(&mut self, stage: &str) -> &Histogram {
        let idx = match self.stages.iter().position(|(name, _)| name == stage) {
            Some(idx) => idx,
            None => {
                self.stages.push((stage.to_string(), Histogram::new()));
                self.stages.len() - 1
            }
        };
        &self.stages[idx].1
    }

    /// Stages in first-seen order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.stages.iter().map(|(n, h)| (n.as_str(), h))
    }

    #[must_use]
    pub fn get(&self, stage: &str) -> Option<&Histogram> {
        self.stages
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, h)| h)
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Render a plain-text percentile table (durations in ms).
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "p50 ms", "p90 ms", "p99 ms", "mean ms", "max ms"
        );
        for (name, hist) in self.stages() {
            let s = hist.snapshot();
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                name,
                s.count(),
                s.percentile(50.0) as f64 / 1_000.0,
                s.percentile(90.0) as f64 / 1_000.0,
                s.percentile(99.0) as f64 / 1_000.0,
                s.mean() / 1_000.0,
                s.max() as f64 / 1_000.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanId;

    fn rec(trace: u64, span: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: (span > 1).then_some(SpanId(1)),
            name,
            start_us: start,
            end_us: end,
            error: false,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_json_has_expected_shape() {
        let mut r = rec(7, 1, "query", 100, 350);
        r.attrs.push(("endpoint", "r0-i1".to_string()));
        let json = chrome_trace_json(&[r, rec(7, 2, "cache", 120, 180)]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"endpoint\":\"r0-i1\""));
        assert!(json.contains("\"parent\":\"1\""));
    }

    #[test]
    fn chrome_json_assigns_one_lane_per_trace() {
        let json = chrome_trace_json(&[
            rec(10, 1, "a", 0, 1),
            rec(11, 1, "b", 0, 1),
            rec(10, 2, "c", 1, 2),
        ]);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        // Third record reuses lane 0 (same trace as the first).
        assert_eq!(json.matches("\"tid\":0").count(), 2);
    }

    #[test]
    fn chrome_json_escapes_attr_values() {
        let mut r = rec(1, 1, "attempt", 0, 5);
        r.error = true;
        r.attrs
            .push(("error", "endpoint \"r1-i0\" down\nretrying".to_string()));
        let json = chrome_trace_json(&[r]);
        assert!(json.contains("\\\"r1-i0\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"error\":true"));
        assert!(!json.contains('\n'), "raw newlines would break the JSON");
    }

    #[test]
    fn empty_records_still_valid_json_object() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn stage_breakdown_groups_by_name() {
        let mut b = StageBreakdown::new();
        b.record_all(&[
            rec(1, 1, "network", 0, 1_000),
            rec(1, 2, "network", 0, 3_000),
            rec(1, 3, "compute", 0, 200),
        ]);
        assert_eq!(b.get("network").map(Histogram::count), Some(2));
        assert_eq!(b.get("compute").map(Histogram::count), Some(1));
        assert!(b.get("cache").is_none());
        let names: Vec<_> = b.stages().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, ["network", "compute"], "first-seen order");
    }

    #[test]
    fn stage_breakdown_merges_external_histograms() {
        let per_endpoint_a = Histogram::new();
        let per_endpoint_b = Histogram::new();
        for _ in 0..50 {
            per_endpoint_a.record(1_000);
            per_endpoint_b.record(5_000);
        }
        let mut b = StageBreakdown::new();
        b.merge("server", &per_endpoint_a.snapshot());
        b.merge("server", &per_endpoint_b.snapshot());
        let merged = b.get("server").unwrap();
        assert_eq!(merged.count(), 100);
        assert!(merged.percentile(90.0) >= 4_900);
    }

    #[test]
    fn render_emits_one_row_per_stage() {
        let mut b = StageBreakdown::new();
        b.record("cache", 150);
        b.record("kv_fetch", 2_500);
        let table = b.render("decomposition");
        assert!(table.contains("decomposition"));
        assert!(table.contains("cache"));
        assert!(table.contains("kv_fetch"));
        assert!(table.contains("p99"));
        assert_eq!(table.lines().count(), 4, "title + header + 2 rows");
    }
}
