//! The collector: per-thread buffer registry plus drain.
//!
//! Recording threads never share a buffer — each thread lazily registers
//! one SPSC ring per collector through a thread-local, so the hot path
//! (`record`) touches no locks. The registry mutex is taken only when a
//! thread records its *first* span into a collector, and by `drain`, which
//! also prunes rings whose owning thread has exited.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::buffer::{SpanBuffer, BUFFER_CAPACITY};
use crate::SpanRecord;

/// Process-wide collector identity; keys the thread-local registry so one
/// thread can record into several collectors (e.g. two traced clusters in
/// one test) without cross-talk.
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_BUFFERS: RefCell<ThreadBuffers> = const { RefCell::new(ThreadBuffers(Vec::new())) };
}

/// This thread's (collector-id → ring) map. Holds `Weak` so a dropped
/// collector's rings do not outlive it through idle threads; the drop impl
/// retires every ring so collectors prune them after a final drain.
struct ThreadBuffers(Vec<(u64, Weak<SpanBuffer>)>);

impl Drop for ThreadBuffers {
    fn drop(&mut self) {
        for (_, buf) in &self.0 {
            if let Some(buf) = buf.upgrade() {
                buf.retire();
            }
        }
    }
}

/// Sink for finished [`SpanRecord`]s.
pub struct TraceCollector {
    id: u64,
    buffers: Mutex<Vec<Arc<SpanBuffer>>>,
    dropped: AtomicU64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    #[must_use]
    pub fn new() -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            buffers: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one finished record to the calling thread's ring (registering
    /// a ring on first use). Never blocks: a full ring or a tearing-down
    /// thread-local counts the record as dropped instead.
    pub fn record(&self, rec: SpanRecord) {
        let pushed = THREAD_BUFFERS
            .try_with(|tb| {
                let mut tb = tb.borrow_mut();
                tb.0.retain(|(_, w)| w.strong_count() > 0);
                let buf = match tb.0.iter().find(|(id, _)| *id == self.id) {
                    Some((_, w)) => w.upgrade(),
                    None => None,
                };
                let buf = match buf {
                    Some(buf) => buf,
                    None => {
                        let buf = Arc::new(SpanBuffer::new(BUFFER_CAPACITY));
                        self.buffers.lock().push(Arc::clone(&buf));
                        tb.0.push((self.id, Arc::downgrade(&buf)));
                        buf
                    }
                };
                buf.push(rec)
            })
            .unwrap_or(false);
        if !pushed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drain every thread's ring, pruning rings whose owner exited. Records
    /// come back ordered by (trace, start, span) so one trace's span tree
    /// is contiguous for the exporters.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        let mut buffers = self.buffers.lock();
        buffers.retain(|buf| {
            while let Some(rec) = buf.pop() {
                out.push(rec);
            }
            !(buf.is_retired() && buf.is_empty())
        });
        drop(buffers);
        out.sort_by_key(|r| (r.trace, r.start_us, r.span));
        out
    }

    /// Records lost to full rings since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Rings currently registered (live + not-yet-pruned retired ones).
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.buffers.lock().len()
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("id", &self.id)
            .field("buffers", &self.buffer_count())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanId, TraceId};

    fn rec(trace: u64, span: u64, start: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: None,
            name: "t",
            start_us: start,
            end_us: start + 1,
            error: false,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn drain_returns_records_sorted_by_trace_then_start() {
        let c = TraceCollector::new();
        c.record(rec(2, 1, 50));
        c.record(rec(1, 2, 90));
        c.record(rec(1, 3, 10));
        let drained = c.drain();
        let keys: Vec<_> = drained.iter().map(|r| (r.trace.0, r.span.0)).collect();
        assert_eq!(keys, [(1, 3), (1, 2), (2, 1)]);
        assert!(c.drain().is_empty(), "drain consumes");
    }

    #[test]
    fn two_collectors_do_not_cross_talk() {
        let a = TraceCollector::new();
        let b = TraceCollector::new();
        a.record(rec(1, 1, 0));
        b.record(rec(2, 1, 0));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    #[test]
    fn records_from_exited_threads_survive_and_rings_are_pruned() {
        let c = Arc::new(TraceCollector::new());
        // Plain spawn + join: join() returns only after the OS thread fully
        // terminated, i.e. after its TLS destructor retired the ring.
        // (thread::scope is weaker — it can return before TLS teardown.)
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        c.record(rec(t, i, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.drain().len(), 40);
        assert_eq!(
            c.buffer_count(),
            0,
            "retired rings must be pruned after a full drain"
        );
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn overflow_counts_dropped_instead_of_blocking() {
        let c = TraceCollector::new();
        let n = (BUFFER_CAPACITY + 10) as u64;
        for i in 0..n {
            c.record(rec(1, i, i));
        }
        assert_eq!(c.drain().len(), BUFFER_CAPACITY);
        assert_eq!(c.dropped(), 10);
    }

    #[test]
    fn concurrent_record_and_drain() {
        let c = Arc::new(TraceCollector::new());
        let total: usize = std::thread::scope(|s| {
            let writers: Vec<_> = (0..3)
                .map(|t| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            c.record(rec(t, i, i));
                            if i % 64 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let drainer = {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut got = 0;
                    for _ in 0..10_000 {
                        got += c.drain().len();
                        std::thread::yield_now();
                    }
                    got
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            drainer.join().unwrap() + c.drain().len()
        });
        assert_eq!(total as u64 + c.dropped(), 6_000);
    }
}
