//! Lock-free single-producer / single-consumer span ring.
//!
//! Each serving thread owns one `SpanBuffer` per collector (reached only
//! through a thread-local registry, which is what makes the producer side
//! single-threaded by construction). The consumer side is the collector's
//! `drain`, serialized by the collector's registry mutex. Producer and
//! consumer never contend on a lock: a push is one slot write plus one
//! `Release` store, so recording a span costs nanoseconds even while a
//! drain is in flight on another core.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::SpanRecord;

/// Records buffered per thread between drains. Spans past this (collector
/// not drained in time) are counted as dropped, never blocked on.
pub(crate) const BUFFER_CAPACITY: usize = 1024;

/// A fixed-capacity SPSC ring of [`SpanRecord`]s.
///
/// `head` is the producer cursor (next write), `tail` the consumer cursor
/// (next read); both increase monotonically and are reduced mod capacity on
/// slot access, so `head == tail` means empty and `head - tail == capacity`
/// means full with no wasted slot.
pub(crate) struct SpanBuffer {
    slots: Box<[UnsafeCell<MaybeUninit<SpanRecord>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    /// Set when the owning thread exits; lets the collector prune the
    /// buffer once it has been drained empty.
    retired: AtomicBool,
}

// SAFETY: the SPSC discipline is enforced structurally — `push` is only
// reachable through the owning thread's thread-local registry, and `pop`
// only under the collector's registry lock. The atomics order the slot
// contents: a slot is written before the Release store of `head` and read
// after the Acquire load of it (and symmetrically for `tail`).
unsafe impl Sync for SpanBuffer {}
unsafe impl Send for SpanBuffer {}

impl SpanBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// Producer side: append one record. Returns `false` (record dropped by
    /// the caller) when the ring is full.
    pub(crate) fn push(&self, rec: SpanRecord) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            return false;
        }
        let idx = head % self.slots.len();
        // SAFETY: only the owning thread writes slots, and `head - tail <
        // capacity` guarantees the consumer is not reading this slot: it
        // was drained (tail passed it) or never written.
        unsafe {
            (*self.slots[idx].get()).write(rec);
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: take the oldest record, if any.
    pub(crate) fn pop(&self) -> Option<SpanRecord> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let idx = tail % self.slots.len();
        // SAFETY: `tail < head` means the producer fully initialized this
        // slot before its Release store of `head`; moving the value out is
        // exclusive because the producer will not rewrite the slot until
        // `tail` has advanced past it.
        let rec = unsafe { (*self.slots[idx].get()).assume_init_read() };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(rec)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    /// Mark the owning thread as gone; the collector prunes the buffer once
    /// drained.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    pub(crate) fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

impl Drop for SpanBuffer {
    fn drop(&mut self) {
        // Release any records still initialized in the ring.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanId, TraceId};
    use std::sync::Arc;

    fn rec(n: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(n),
            parent: None,
            name: "t",
            start_us: n,
            end_us: n + 1,
            error: false,
            attrs: vec![("k", format!("v{n}"))],
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let b = SpanBuffer::new(8);
        for i in 0..5 {
            assert!(b.push(rec(i)));
        }
        for i in 0..5 {
            assert_eq!(b.pop().map(|r| r.span), Some(SpanId(i)));
        }
        assert!(b.pop().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn full_ring_rejects_without_blocking() {
        let b = SpanBuffer::new(4);
        for i in 0..4 {
            assert!(b.push(rec(i)));
        }
        assert!(!b.push(rec(99)), "5th push into capacity-4 ring must fail");
        assert_eq!(b.pop().map(|r| r.span), Some(SpanId(0)));
        assert!(b.push(rec(4)), "space freed by pop is reusable");
    }

    #[test]
    fn wraparound_many_times() {
        let b = SpanBuffer::new(4);
        for i in 0..1000u64 {
            assert!(b.push(rec(i)));
            assert_eq!(b.pop().map(|r| r.span), Some(SpanId(i)));
        }
    }

    #[test]
    fn concurrent_producer_consumer() {
        let b = Arc::new(SpanBuffer::new(16));
        const N: u64 = 20_000;
        let prod = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let mut i = 0;
                while i < N {
                    if b.push(rec(i)) {
                        i += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut next = 0u64;
        while next < N {
            match b.pop() {
                Some(r) => {
                    assert_eq!(r.span, SpanId(next), "records must arrive in order");
                    assert_eq!(r.attrs[0].1, format!("v{next}"), "attrs intact");
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        prod.join().unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn drop_releases_pending_records() {
        let b = SpanBuffer::new(8);
        for i in 0..6 {
            b.push(rec(i));
        }
        drop(b); // must not leak the 6 initialized slots (checked by miri/asan in spirit)
    }

    #[test]
    fn retirement_flag() {
        let b = SpanBuffer::new(2);
        assert!(!b.is_retired());
        b.retire();
        assert!(b.is_retired());
    }
}
