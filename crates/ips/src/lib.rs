//! # ips — one import surface over the `ips-rs` workspace
//!
//! A from-scratch Rust reproduction of *IPS: Unified Profile Management for
//! Ubiquitous Online Recommendations* (ICDE 2021): a unified profile store
//! that ingests user-behaviour counts at high rate and serves inline feature
//! computations (top-K / filter / decay over flexible time windows) at low
//! latency, bounded in memory by automatic compaction, truncation and
//! long-tail shrink, persisted through a versioned key-value substrate and
//! deployed multi-region behind consistent-hash routing.
//!
//! The workspace crates, re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `ips-types` | ids, timestamps, time ranges, configs, errors |
//! | [`metrics`] | `ips-metrics` | histograms, counters, rates, time series |
//! | [`codec`] | `ips-codec` | wire format, compressor, storage frames |
//! | [`kv`] | `ips-kv` | versioned KV store, WAL, replication |
//! | [`core`] | `ips-core` | the profile engine itself |
//! | [`cluster`] | `ips-cluster` | hashing, discovery, RPC, regions, client |
//! | [`ingest`] | `ips-ingest` | stream join, topic log, ingestion, workloads |
//! | [`baseline`] | `ips-baseline` | lambda / pre-agg / naive baselines |
//! | [`trace`] | `ips-trace` | request-scoped spans, sampling, exporters |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the paper's Alice example end-to-end,
//! `examples/content_feeds.rs` and `examples/advertising.rs` for the two
//! §I use cases, and `examples/cluster_failover.rs` for the multi-region
//! deployment.

pub use ips_baseline as baseline;
pub use ips_cluster as cluster;
pub use ips_codec as codec;
pub use ips_core as core;
pub use ips_ingest as ingest;
pub use ips_kv as kv;
pub use ips_metrics as metrics;
pub use ips_trace as trace;
pub use ips_types as types;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ips_cluster::{IpsClusterClient, MultiRegionDeployment, MultiRegionOptions};
    pub use ips_core::query::{FilterPredicate, ProfileQuery, QueryKind, QueryResult};
    pub use ips_core::server::{IpsInstance, IpsInstanceOptions};
    pub use ips_types::clock::{sim_clock, system_clock, SimClock};
    pub use ips_types::config::DecayFunction;
    pub use ips_types::{
        ActionTypeId, AggregateFunction, CallerId, Clock, CountVector, DurationMs, FeatureId,
        IpsError, ProfileId, QuotaConfig, Result, SlotId, SortKey, SortOrder, TableConfig, TableId,
        TimeRange, Timestamp,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let clock = system_clock();
        let _ = clock.now();
        let _ = TableConfig::new("smoke");
    }
}
