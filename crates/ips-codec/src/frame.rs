//! The storage envelope: what actually lands in the key-value store.
//!
//! Layout: `magic(1) | flags(1) | uncompressed_len varint | checksum fixed64
//! | [trace ctx (17)] | payload`. The checksum is FNV-1a over the
//! *uncompressed* bytes, so corruption anywhere in the pipeline (compressor
//! bug, torn KV write, replication glitch) is caught on load. Payloads that
//! do not shrink under compression are stored raw — the same escape hatch
//! Snappy-framed formats use for incompressible data.
//!
//! When `FLAG_TRACE` is set, a fixed 17-byte trace context (trace id u64 LE,
//! span id u64 LE, sampled u8) follows the checksum: the frame records which
//! request wrote it, so a flushed blob can be tied back to its trace.
//! Decoding is backward compatible both ways — old frames (flag clear) parse
//! unchanged, and [`decode_frame`] transparently skips the context on new
//! frames for callers that do not care about it.
// wire-schema: registry

use std::fmt;

use crate::compress::{compress_into, decompress, CompressError};
use crate::varint::{decode_u64, encode_u64};

const MAGIC: u8 = 0xA9;
const FLAG_COMPRESSED: u8 = 0x01;
const FLAG_TRACE: u8 = 0x02;
const KNOWN_FLAGS: u8 = FLAG_COMPRESSED | FLAG_TRACE;
const TRACE_CTX_LEN: usize = 8 + 8 + 1;

/// The wire form of a span context carried in a frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTraceContext {
    pub trace_id: u64,
    pub span_id: u64,
    pub sampled: bool,
}

/// Errors from frame decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Missing or wrong magic byte.
    BadMagic,
    /// Frame header incomplete.
    Truncated,
    /// Unknown flag bits set.
    UnknownFlags(u8),
    /// Checksum mismatch after decoding.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// Payload failed to decompress.
    Compress(CompressError),
    /// The payload length disagrees with the header.
    LengthMismatch { declared: usize, actual: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::UnknownFlags(b) => write!(f, "unknown frame flags {b:#04x}"),
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#x}, got {actual:#x}"
                )
            }
            FrameError::Compress(e) => write!(f, "decompression failed: {e}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, got {actual}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CompressError> for FrameError {
    fn from(e: CompressError) -> Self {
        FrameError::Compress(e)
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode `payload` into a frame, compressing when it helps.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    encode_frame_traced(payload, None)
}

/// Encode `payload` into a frame, stamping the writing request's trace
/// context into the header when one is supplied.
#[must_use]
pub fn encode_frame_traced(payload: &[u8], trace: Option<&FrameTraceContext>) -> Vec<u8> {
    // The compressed intermediate never outlives this call (it is either
    // copied into the envelope or discarded by the raw fallback), so it is
    // served from the thread-local buffer pool.
    let mut compressed = crate::pool::take_buf();
    compress_into(payload, &mut compressed);
    let use_compressed = compressed.len() < payload.len();
    let body: &[u8] = if use_compressed { &compressed } else { payload };

    let mut flags = 0u8;
    if use_compressed {
        flags |= FLAG_COMPRESSED;
    }
    if trace.is_some() {
        flags |= FLAG_TRACE;
    }
    // lint: allow(encode-alloc, reason = "the envelope escapes to the caller, so it cannot come from the pool")
    let mut out = Vec::with_capacity(body.len() + 16 + TRACE_CTX_LEN);
    out.push(MAGIC);
    out.push(flags);
    encode_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    if let Some(ctx) = trace {
        out.extend_from_slice(&ctx.trace_id.to_le_bytes());
        out.extend_from_slice(&ctx.span_id.to_le_bytes());
        out.push(u8::from(ctx.sampled));
    }
    out.extend_from_slice(body);
    crate::pool::give_buf(compressed);
    out
}

/// Decode a frame back into its payload, verifying the checksum. A trace
/// context in the header (newer writers) is skipped transparently.
pub fn decode_frame(frame: &[u8]) -> Result<Vec<u8>, FrameError> {
    decode_frame_traced(frame).map(|(payload, _)| payload)
}

/// Decode a frame into its payload plus the writer's trace context, if the
/// frame carries one.
pub fn decode_frame_traced(
    frame: &[u8],
) -> Result<(Vec<u8>, Option<FrameTraceContext>), FrameError> {
    if frame.len() < 2 {
        return Err(FrameError::Truncated);
    }
    if frame[0] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let flags = frame[1];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(FrameError::UnknownFlags(flags));
    }
    let rest = &frame[2..];
    let (declared_len, n) = decode_u64(rest).map_err(|_| FrameError::Truncated)?;
    let rest = &rest[n..];
    if rest.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let mut cs = [0u8; 8];
    cs.copy_from_slice(&rest[..8]);
    let expected = u64::from_le_bytes(cs);
    let mut body = &rest[8..];
    let trace = if flags & FLAG_TRACE != 0 {
        if body.len() < TRACE_CTX_LEN {
            return Err(FrameError::Truncated);
        }
        let mut t = [0u8; 8];
        t.copy_from_slice(&body[..8]);
        let mut s = [0u8; 8];
        s.copy_from_slice(&body[8..16]);
        let ctx = FrameTraceContext {
            trace_id: u64::from_le_bytes(t),
            span_id: u64::from_le_bytes(s),
            sampled: body[16] != 0,
        };
        body = &body[TRACE_CTX_LEN..];
        Some(ctx)
    } else {
        None
    };
    let declared_len = usize::try_from(declared_len).map_err(|_| FrameError::Truncated)?;

    let payload = if flags & FLAG_COMPRESSED != 0 {
        decompress(body, declared_len)?
    } else {
        body.to_vec()
    };
    if payload.len() != declared_len {
        return Err(FrameError::LengthMismatch {
            declared: declared_len,
            actual: payload.len(),
        });
    }
    let actual = fnv1a(&payload);
    if actual != expected {
        return Err(FrameError::ChecksumMismatch { expected, actual });
    }
    Ok((payload, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_compressible() {
        let data = b"profile slice ".repeat(500);
        let frame = encode_frame(&data);
        assert!(frame.len() < data.len() / 2, "should have compressed");
        assert_eq!(decode_frame(&frame).unwrap(), data);
    }

    #[test]
    fn round_trip_incompressible_stays_raw() {
        let data: Vec<u8> = (0..1_000u32)
            .flat_map(|i| i.wrapping_mul(2_654_435_761).to_le_bytes())
            .collect();
        let frame = encode_frame(&data);
        assert_eq!(frame[1], 0, "incompressible payload must be stored raw");
        assert_eq!(decode_frame(&frame).unwrap(), data);
    }

    #[test]
    fn empty_payload() {
        let frame = encode_frame(b"");
        assert_eq!(decode_frame(&frame).unwrap(), b"");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(b"hello");
        frame[0] = 0x00;
        assert_eq!(decode_frame(&frame), Err(FrameError::BadMagic));
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut frame = encode_frame(b"hello");
        frame[1] |= 0x80;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::UnknownFlags(_))
        ));
    }

    #[test]
    fn traced_frame_round_trips_context() {
        let ctx = FrameTraceContext {
            trace_id: 0xDEAD_BEEF_0042,
            span_id: 17,
            sampled: true,
        };
        let data = b"profile slice ".repeat(500);
        let frame = encode_frame_traced(&data, Some(&ctx));
        let (payload, got) = decode_frame_traced(&frame).unwrap();
        assert_eq!(payload, data);
        assert_eq!(got, Some(ctx));
        // Plain decode skips the context but still yields the payload.
        assert_eq!(decode_frame(&frame).unwrap(), data);
    }

    #[test]
    fn untraced_frame_decodes_with_no_context() {
        let frame = encode_frame(b"hello");
        let (payload, ctx) = decode_frame_traced(&frame).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(ctx, None);
    }

    #[test]
    fn traced_incompressible_frame_round_trips() {
        let data: Vec<u8> = (0..1_000u32)
            .flat_map(|i| i.wrapping_mul(2_654_435_761).to_le_bytes())
            .collect();
        let ctx = FrameTraceContext {
            trace_id: 1,
            span_id: 2,
            sampled: false,
        };
        let frame = encode_frame_traced(&data, Some(&ctx));
        let (payload, got) = decode_frame_traced(&frame).unwrap();
        assert_eq!(payload, data);
        assert_eq!(got, Some(ctx));
    }

    #[test]
    fn traced_frame_truncated_in_context_detected() {
        let frame = encode_frame_traced(
            b"x",
            Some(&FrameTraceContext {
                trace_id: 9,
                span_id: 9,
                sampled: true,
            }),
        );
        // Cut inside the 17-byte trace context region.
        let cut = frame.len() - 1 - 10;
        assert!(decode_frame_traced(&frame[..cut]).is_err());
    }

    #[test]
    fn corrupted_payload_caught_by_checksum() {
        let data = b"important profile bytes important profile bytes".to_vec();
        let mut frame = encode_frame(&data);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        match decode_frame(&frame) {
            Err(FrameError::ChecksumMismatch { .. }) | Err(FrameError::Compress(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let frame = encode_frame(&b"hello world ".repeat(50));
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "prefix of len {cut} must not decode"
            );
        }
    }

    proptest! {
        #[test]
        fn round_trips_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let frame = encode_frame(&data);
            prop_assert_eq!(decode_frame(&frame).unwrap(), data);
        }

        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_frame(&data);
        }

        #[test]
        fn single_byte_corruption_never_yields_wrong_payload(
            data in proptest::collection::vec(any::<u8>(), 1..512),
            flip_idx in any::<usize>(),
            flip_bit in 0u8..8,
        ) {
            let frame = encode_frame(&data);
            let mut corrupted = frame.clone();
            let idx = flip_idx % corrupted.len();
            corrupted[idx] ^= 1 << flip_bit;
            // A detected corruption (Err) is the expected outcome; a clean
            // decode is only acceptable when the flip landed in dead space.
            if let Ok(decoded) = decode_frame(&corrupted) {
                prop_assert_eq!(decoded, data);
            }
        }
    }
}
