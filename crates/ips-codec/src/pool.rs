//! Thread-local pooled scratch buffers for the encode hot path.
//!
//! Profile serialization is allocation-heavy by construction: every nested
//! message in the wire format builds a scratch `Vec<u8>`, the compressor
//! allocates a 64 KiB hash table per call, and the frame encoder materializes
//! a compressed intermediate it usually throws away (raw fallback) or copies
//! into the envelope. None of those buffers outlive one encode call, so the
//! steady state should reuse them instead of exercising the allocator on
//! every flush and RPC.
//!
//! The pool is deliberately small and thread-local: no locks, no cross-thread
//! traffic, bounded retained memory. Buffers above a retention cap are
//! dropped rather than cached so one huge profile cannot pin memory forever.
// wire-schema: registry

use std::cell::{Cell, RefCell};

/// Maximum number of byte buffers retained per thread. Nested-message
/// encoding recurses (profile → slice → slot → action → feature), so the
/// pool must hold at least that depth to keep the recursion allocation-free.
const MAX_POOLED_BUFS: usize = 8;
/// Buffers whose capacity grew beyond this are dropped on return instead of
/// being retained (bounds per-thread retained memory).
const MAX_RETAINED_CAP: usize = 256 << 10;

thread_local! {
    static BUF_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static U32_TABLE: RefCell<Option<Box<[u32]>>> = const { RefCell::new(None) };
    static BUF_REUSES: Cell<u64> = const { Cell::new(0) };
    static BUF_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TABLE_REUSES: Cell<u64> = const { Cell::new(0) };
    static TABLE_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Per-thread pool counters, for tests and benchmarks that want to prove the
/// steady state stops allocating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Byte buffers served from the pool.
    pub buf_reuses: u64,
    /// Byte buffers freshly allocated (pool empty).
    pub buf_allocs: u64,
    /// Compressor scratch tables served from the pool.
    pub table_reuses: u64,
    /// Compressor scratch tables freshly allocated.
    pub table_allocs: u64,
}

/// Snapshot this thread's pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        buf_reuses: BUF_REUSES.with(Cell::get),
        buf_allocs: BUF_ALLOCS.with(Cell::get),
        table_reuses: TABLE_REUSES.with(Cell::get),
        table_allocs: TABLE_ALLOCS.with(Cell::get),
    }
}

/// Take an empty byte buffer from this thread's pool (or allocate one).
/// Return it with [`give_buf`] when done so the capacity is reused.
#[must_use]
pub fn take_buf() -> Vec<u8> {
    BUF_POOL.with(|p| {
        if let Some(buf) = p.borrow_mut().pop() {
            BUF_REUSES.with(|c| c.set(c.get() + 1));
            debug_assert!(buf.is_empty());
            buf
        } else {
            BUF_ALLOCS.with(|c| c.set(c.get() + 1));
            Vec::new()
        }
    })
}

/// Return a buffer to this thread's pool. Oversized or excess buffers are
/// dropped so retained memory stays bounded.
pub fn give_buf(mut buf: Vec<u8>) {
    if buf.capacity() > MAX_RETAINED_CAP {
        return;
    }
    buf.clear();
    BUF_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_BUFS {
            pool.push(buf);
        }
    });
}

/// Run `f` with a `len`-wide `u32` scratch table pre-filled with `fill`,
/// reusing one pooled allocation per thread. The compressor's hash table is
/// the sole intended user; `len` must be the same on every call from a given
/// thread (a mismatch falls back to reallocating).
pub fn with_u32_table<R>(len: usize, fill: u32, f: impl FnOnce(&mut [u32]) -> R) -> R {
    U32_TABLE.with(|slot| {
        let mut table = match slot.borrow_mut().take() {
            Some(t) if t.len() == len => {
                TABLE_REUSES.with(|c| c.set(c.get() + 1));
                t
            }
            _ => {
                TABLE_ALLOCS.with(|c| c.set(c.get() + 1));
                vec![0u32; len].into_boxed_slice()
            }
        };
        table.fill(fill);
        let r = f(&mut table);
        *slot.borrow_mut() = Some(table);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused() {
        let before = stats();
        let a = take_buf();
        give_buf(a);
        let b = take_buf();
        give_buf(b);
        let after = stats();
        assert!(
            after.buf_reuses > before.buf_reuses,
            "second take should hit the pool: {after:?}"
        );
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        // Drain the pool so the oversized buffer would be next in line.
        let mut drained = Vec::new();
        loop {
            let b = take_buf();
            if b.capacity() == 0 {
                break;
            }
            drained.push(b);
        }
        let mut big = Vec::with_capacity(MAX_RETAINED_CAP + 1);
        big.push(1u8);
        give_buf(big);
        let next = take_buf();
        assert!(
            next.capacity() <= MAX_RETAINED_CAP,
            "oversized buffer must not be retained"
        );
        give_buf(next);
        for b in drained {
            give_buf(b);
        }
    }

    #[test]
    fn pool_depth_is_bounded() {
        let bufs: Vec<Vec<u8>> = (0..MAX_POOLED_BUFS + 4).map(|_| Vec::new()).collect();
        for b in bufs {
            give_buf(b);
        }
        let retained = BUF_POOL.with(|p| p.borrow().len());
        assert!(retained <= MAX_POOLED_BUFS);
    }

    #[test]
    fn u32_table_is_reused_and_reset() {
        with_u32_table(64, u32::MAX, |t| {
            assert!(t.iter().all(|&v| v == u32::MAX));
            t[0] = 7;
        });
        let before = stats();
        with_u32_table(64, u32::MAX, |t| {
            assert_eq!(t[0], u32::MAX, "table must be re-filled between uses");
        });
        let after = stats();
        assert!(after.table_reuses > before.table_reuses);
    }

    #[test]
    fn u32_table_len_mismatch_reallocates() {
        with_u32_table(16, 0, |t| assert_eq!(t.len(), 16));
        with_u32_table(32, 0, |t| assert_eq!(t.len(), 32));
    }

    #[test]
    fn give_buf_clears_contents() {
        let mut b = take_buf();
        b.extend_from_slice(b"secret");
        give_buf(b);
        let b = take_buf();
        assert!(b.is_empty());
        give_buf(b);
    }
}
