//! Serialization substrate for `ips-rs`.
//!
//! The paper persists profiles by serializing the in-memory hierarchy into a
//! Protocol Buffers encoding and compressing the result with Snappy
//! (§III-E). Both are substituted with from-scratch equivalents that occupy
//! the same design points:
//!
//! * [`varint`] — LEB128 unsigned varints and zigzag signed mapping, the
//!   foundation of the wire format;
//! * [`wire`] — a tagged field encoding ([`wire::WireWriter`] /
//!   [`wire::WireReader`]) with varint, fixed-64 and length-delimited wire
//!   types, supporting unknown-field skipping for forward compatibility;
//! * [`compress`] — an LZ-class byte compressor (greedy hash-table match
//!   finding, literal/copy ops) tuned for speed over ratio, like Snappy;
//! * [`frame`] — the envelope stored in the KV layer: magic, flags,
//!   checksum, optional compression with automatic raw fallback for
//!   incompressible payloads;
//! * [`pool`] — thread-local pooled scratch buffers (nested-message
//!   writers, compressor hash tables, frame intermediates) so steady-state
//!   encoding does zero heap growth.
//!
//! The profile⇄bytes schema itself lives next to the data structures in
//! `ips-core::persist`; this crate is deliberately schema-agnostic.
// wire-schema: registry

pub mod compress;
pub mod frame;
pub mod pool;
pub mod varint;
pub mod wire;

pub use compress::{compress, compress_into, decompress, CompressError};
pub use frame::{
    decode_frame, decode_frame_traced, encode_frame, encode_frame_traced, FrameError,
    FrameTraceContext,
};
pub use pool::PoolStats;
pub use varint::{
    decode_u64, encode_u64, zigzag_decode, zigzag_encode, DecodeError as VarintError,
};
pub use wire::{FieldValue, WireError, WireReader, WireType, WireWriter};
