//! An LZ-class byte compressor (Snappy substitute).
//!
//! IPS compresses serialized profiles before handing them to the persistent
//! key-value store to cut network traffic and storage space (§III-E). The
//! design point is Snappy's: optimize for encode/decode *speed*, accept a
//! modest ratio. This implementation uses greedy LZ77 with a fixed-size
//! hash table over 4-byte sequences.
//!
//! ## Format
//!
//! A stream of operations, each starting with a tag byte:
//!
//! * **Literal** (`tag & 1 == 0`): `len = tag >> 1` bytes of raw data follow
//!   if `len <= 126`; `tag >> 1 == 127` means a varint extended length
//!   follows the tag, then the data.
//! * **Copy** (`tag & 1 == 1`): `len = tag >> 1` (with the same varint
//!   extension at 127), then a varint back-offset. Copies may overlap the
//!   output (offset < len), enabling run-length encoding.
//!
//! The uncompressed length is *not* part of this format; the [`crate::frame`]
//! envelope carries it.
// wire-schema: registry

use std::fmt;

use crate::varint::{decode_u64, encode_u64};

/// Minimum match length worth emitting a copy for: tag byte + 1–2 varint
/// bytes of offset must beat the literal cost.
const MIN_MATCH: usize = 4;
/// Hash-table size (power of two).
const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Length at which the tag byte switches to extended varint encoding.
const INLINE_LEN_MAX: u64 = 126;
const EXTENDED_LEN_MARKER: u64 = 127;

/// Errors from decompression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended inside an operation.
    Truncated,
    /// A copy op referenced data before the start of the output.
    BadOffset { offset: usize, produced: usize },
    /// A varint inside the stream was malformed.
    BadVarint,
    /// A zero-length or zero-offset op, which the encoder never emits.
    BadOp,
    /// Output would exceed the declared limit (corrupt or hostile input).
    TooLarge { limit: usize },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadOffset { offset, produced } => {
                write!(f, "copy offset {offset} exceeds produced {produced}")
            }
            CompressError::BadVarint => write!(f, "bad varint in compressed stream"),
            CompressError::BadOp => write!(f, "invalid zero-length operation"),
            CompressError::TooLarge { limit } => {
                write!(f, "decompressed output exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn hash4(data: &[u8]) -> usize {
    // Multiplicative hash of the next 4 bytes.
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

fn emit_len(out: &mut Vec<u8>, len: u64, is_copy: bool) {
    let flag = u64::from(is_copy);
    if len <= INLINE_LEN_MAX {
        out.push(((len << 1) | flag) as u8);
    } else {
        out.push(((EXTENDED_LEN_MARKER << 1) | flag) as u8);
        encode_u64(out, len);
    }
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    if lit.is_empty() {
        return;
    }
    emit_len(out, lit.len() as u64, false);
    out.extend_from_slice(lit);
}

fn emit_copy(out: &mut Vec<u8>, len: usize, offset: usize) {
    debug_assert!(len >= MIN_MATCH && offset >= 1);
    emit_len(out, len as u64, true);
    encode_u64(out, offset as u64);
}

/// Compress `input`. The output is self-contained except for the
/// uncompressed length (see module docs).
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out);
    out
}

/// Compress `input`, appending the stream to `out` (which is cleared first).
/// The caller owns the output buffer, so hot paths can reuse a pooled one;
/// the match-finder hash table is always served from the thread-local pool
/// rather than allocated per call.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(input.len() / 2 + 16);
    if input.len() < MIN_MATCH + 1 {
        emit_literal(out, input);
        return;
    }

    // table[h] = last position whose 4-byte hash was h.
    crate::pool::with_u32_table(HASH_SIZE, u32::MAX, |table| {
        let mut pos = 0usize;
        let mut lit_start = 0usize;
        // Stop early enough that hash4/extension reads stay in bounds.
        let limit = input.len() - MIN_MATCH;

        while pos <= limit {
            let h = hash4(&input[pos..]);
            let candidate = table[h] as usize;
            table[h] = pos as u32;

            if candidate != u32::MAX as usize
                && candidate < pos
                && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
            {
                // Extend the match as far as possible.
                let mut len = MIN_MATCH;
                while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                emit_literal(out, &input[lit_start..pos]);
                emit_copy(out, len, pos - candidate);
                // Index a couple of positions inside the match so long runs
                // remain discoverable, then skip past it.
                let end = pos + len;
                let mut p = pos + 1;
                while p < end.min(limit) && p < pos + 4 {
                    table[hash4(&input[p..])] = p as u32;
                    p += 1;
                }
                pos = end;
                lit_start = pos;
            } else {
                pos += 1;
            }
        }
        emit_literal(out, &input[lit_start..]);
    });
}

/// Decompress a stream produced by [`compress`]. `max_len` bounds the output
/// to protect against corrupt or hostile inputs; pass the frame's declared
/// uncompressed length.
pub fn decompress(mut input: &[u8], max_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out: Vec<u8> = Vec::with_capacity(max_len.min(1 << 20));
    while !input.is_empty() {
        let tag = u64::from(input[0]);
        input = &input[1..];
        let is_copy = tag & 1 == 1;
        let mut len = tag >> 1;
        if len == EXTENDED_LEN_MARKER {
            let (v, n) = decode_u64(input).map_err(|_| CompressError::BadVarint)?;
            len = v;
            input = &input[n..];
        }
        if len == 0 {
            return Err(CompressError::BadOp);
        }
        let len = usize::try_from(len).map_err(|_| CompressError::TooLarge { limit: max_len })?;
        if out.len() + len > max_len {
            return Err(CompressError::TooLarge { limit: max_len });
        }
        if is_copy {
            let (off, n) = decode_u64(input).map_err(|_| CompressError::BadVarint)?;
            input = &input[n..];
            let offset = usize::try_from(off).map_err(|_| CompressError::BadOffset {
                offset: usize::MAX,
                produced: out.len(),
            })?;
            if offset == 0 || offset > out.len() {
                return Err(CompressError::BadOffset {
                    offset,
                    produced: out.len(),
                });
            }
            // Overlapping copies are legal (RLE); copy byte-by-byte when the
            // regions overlap, in blocks otherwise.
            let start = out.len() - offset;
            if offset >= len {
                out.extend_from_within(start..start + len);
            } else {
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        } else {
            if input.len() < len {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&input[..len]);
            input = &input[len..];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c, data.len()).expect("decompress")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abcd"), b"abcd");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"abcdefgh".repeat(1_000);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 10,
            "expected >10x on pure repetition, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn run_length_overlap_copy() {
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 64, "RLE should be tiny, got {}", c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_grows_only_slightly() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut data = vec![0u8; 64 << 10];
        rng.fill_bytes(&mut data);
        let c = compress(&data);
        // Worst case: one extended literal header per stream ~ negligible.
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn profile_like_data_compresses() {
        // Varint-encoded small ids + counts with shared prefixes, similar to
        // serialized slices.
        let mut data = Vec::new();
        for i in 0u64..5_000 {
            crate::varint::encode_u64(&mut data, i % 97);
            crate::varint::encode_u64(&mut data, 1 + i % 3);
            data.extend_from_slice(b"slotA.typeB");
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2, "{} -> {}", data.len(), c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn compress_into_matches_compress_and_clears_dirty_buffer() {
        let data = b"abcdefgh".repeat(500);
        let mut out = b"stale garbage".to_vec();
        compress_into(&data, &mut out);
        assert_eq!(out, compress(&data));
        assert_eq!(decompress(&out, data.len()).unwrap(), data);
    }

    #[test]
    fn repeated_compression_reuses_pooled_hash_table() {
        let data = b"pooled table check".repeat(64);
        let _ = compress(&data);
        let before = crate::pool::stats();
        let _ = compress(&data);
        let after = crate::pool::stats();
        assert!(after.table_reuses > before.table_reuses);
        assert_eq!(after.table_allocs, before.table_allocs);
    }

    #[test]
    fn max_len_guard_rejects_oversized() {
        let data = b"xyz".repeat(100);
        let c = compress(&data);
        assert_eq!(
            decompress(&c, data.len() - 1),
            Err(CompressError::TooLarge {
                limit: data.len() - 1
            })
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        for cut in 1..c.len() {
            // Every strict prefix must either error or produce a strict
            // prefix of the original -- never panic.
            if let Ok(d) = decompress(&c[..cut], data.len()) {
                assert!(data.starts_with(&d))
            }
        }
    }

    #[test]
    fn bad_offset_rejected() {
        // Copy of length 4, offset 9 with no produced output.
        let mut stream = Vec::new();
        stream.push(((4u64 << 1) | 1) as u8);
        encode_u64(&mut stream, 9);
        assert!(matches!(
            decompress(&stream, 100),
            Err(CompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn zero_len_op_rejected() {
        let stream = [0u8]; // literal of length 0
        assert_eq!(decompress(&stream, 10), Err(CompressError::BadOp));
    }

    #[test]
    fn long_literal_extended_header() {
        // 10 KiB of random-ish data forces the extended-length literal path.
        let data: Vec<u8> = (0..10_240u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
            .collect();
        assert_eq!(round_trip(&data), data);
    }

    proptest! {
        #[test]
        fn round_trips_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(round_trip(&data), data);
        }

        #[test]
        fn round_trips_structured(
            seed in any::<u64>(),
            n in 1usize..200,
        ) {
            // Structured data with both repetition and noise.
            let mut data = Vec::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let run = (x % 64) as usize;
                let byte = (x >> 32) as u8;
                data.extend(std::iter::repeat_n(byte, run));
                data.extend_from_slice(&x.to_le_bytes());
            }
            prop_assert_eq!(round_trip(&data), data);
        }

        #[test]
        fn decompress_never_panics_on_garbage(
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let _ = decompress(&data, 1 << 16);
        }
    }
}
