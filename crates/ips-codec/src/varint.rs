//! LEB128 varints and zigzag signed mapping.
// wire-schema: registry

use std::fmt;

/// Maximum encoded size of a u64 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Errors from varint decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-varint.
    Truncated,
    /// More than 10 continuation bytes (or bits beyond 64).
    Overflow,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "varint truncated"),
            DecodeError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append `v` to `buf` as a LEB128 varint.
#[inline]
pub fn encode_u64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode a varint from the front of `buf`; returns `(value, bytes_read)`.
#[inline]
pub fn decode_u64(buf: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, b) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(DecodeError::Overflow);
        }
        let low = u64::from(b & 0x7f);
        if shift == 63 && low > 1 {
            return Err(DecodeError::Overflow);
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(DecodeError::Truncated)
}

/// Zigzag-map a signed value so small magnitudes encode small.
#[inline]
#[must_use]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
#[must_use]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encoded length of `v` without encoding it.
#[inline]
#[must_use]
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_known_values() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ];
        for &(v, expect_len) in cases {
            let mut buf = Vec::new();
            encode_u64(&mut buf, v);
            assert_eq!(buf.len(), expect_len, "len for {v}");
            assert_eq!(varint_len(v), expect_len, "varint_len for {v}");
            let (got, read) = decode_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(read, expect_len);
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, 1_000_000);
        buf.pop();
        assert_eq!(decode_u64(&buf), Err(DecodeError::Truncated));
        assert_eq!(decode_u64(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_overflow() {
        // 11 continuation bytes.
        let buf = [0x80u8; 11];
        assert_eq!(decode_u64(&buf), Err(DecodeError::Overflow));
        // 10 bytes but bits beyond the 64th set.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x7f);
        assert_eq!(decode_u64(&buf), Err(DecodeError::Overflow));
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, 300);
        buf.extend_from_slice(b"tail");
        let (v, read) = decode_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(read, 2);
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    proptest! {
        #[test]
        fn round_trip_u64(v in any::<u64>()) {
            let mut buf = Vec::new();
            encode_u64(&mut buf, v);
            let (got, read) = decode_u64(&buf).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(read, buf.len());
            prop_assert_eq!(varint_len(v), buf.len());
        }

        #[test]
        fn round_trip_zigzag(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn zigzag_small_magnitude_encodes_small(v in -1000i64..1000) {
            prop_assert!(zigzag_encode(v) <= 2000);
        }
    }
}
