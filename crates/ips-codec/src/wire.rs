//! Tagged-field wire format (Protocol Buffers substitute).
//!
//! Every field is written as `tag = (field_number << 3) | wire_type` followed
//! by the payload. Three wire types cover everything IPS persists:
//!
//! * `Varint` — unsigned integers (ids, counts via zigzag, lengths);
//! * `Fixed64` — timestamps and generations where constant width helps;
//! * `Bytes` — length-delimited blobs, including nested messages.
//!
//! Readers skip unknown fields, so schemas can grow without breaking old
//! data — the property that makes split-profile persistence (Fig 13) safe to
//! evolve.
// wire-schema: registry

use std::fmt;

use crate::varint::{decode_u64, encode_u64, zigzag_decode, zigzag_encode, DecodeError};

/// Wire types, stored in the low 3 bits of every tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireType {
    Varint = 0,
    Fixed64 = 1,
    Bytes = 2,
}

impl WireType {
    fn from_bits(bits: u64) -> Result<Self, WireError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::Bytes),
            other => Err(WireError::UnknownWireType(other as u8)),
        }
    }
}

/// Errors from wire decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    Varint(DecodeError),
    UnknownWireType(u8),
    Truncated,
    /// Field number zero is reserved.
    ZeroFieldNumber,
    /// Caller expected a different wire type for this field.
    TypeMismatch {
        field: u32,
        expected: WireType,
        actual: WireType,
    },
    /// A required field was absent.
    MissingField(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Varint(e) => write!(f, "varint: {e}"),
            WireError::UnknownWireType(t) => write!(f, "unknown wire type {t}"),
            WireError::Truncated => write!(f, "message truncated"),
            WireError::ZeroFieldNumber => write!(f, "field number 0 is reserved"),
            WireError::TypeMismatch {
                field,
                expected,
                actual,
            } => write!(f, "field {field}: expected {expected:?}, found {actual:?}"),
            WireError::MissingField(n) => write!(f, "missing required field {n}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Varint(e)
    }
}

/// Serializes tagged fields into a byte buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A writer backed by a buffer from the thread-local pool. Pair with
    /// [`WireWriter::recycle`] (after copying the bytes out via
    /// [`WireWriter::as_slice`]) so the capacity is reused; calling
    /// [`WireWriter::into_bytes`] instead simply keeps the buffer.
    #[must_use]
    pub fn pooled() -> Self {
        Self {
            buf: crate::pool::take_buf(),
        }
    }

    /// The encoded bytes so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Return this writer's buffer to the thread-local pool.
    pub fn recycle(self) {
        crate::pool::give_buf(self.buf);
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        debug_assert!(field > 0, "field number 0 is reserved");
        encode_u64(&mut self.buf, (u64::from(field) << 3) | wt as u64);
    }

    /// Write an unsigned varint field.
    pub fn put_u64(&mut self, field: u32, v: u64) {
        self.tag(field, WireType::Varint);
        encode_u64(&mut self.buf, v);
    }

    /// Write a signed varint field (zigzag).
    pub fn put_i64(&mut self, field: u32, v: i64) {
        self.put_u64(field, zigzag_encode(v));
    }

    /// Write a bool as a varint field.
    pub fn put_bool(&mut self, field: u32, v: bool) {
        self.put_u64(field, u64::from(v));
    }

    /// Write a fixed-width 64-bit field (little endian).
    pub fn put_fixed64(&mut self, field: u32, v: u64) {
        self.tag(field, WireType::Fixed64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-delimited byte field.
    pub fn put_bytes(&mut self, field: u32, v: &[u8]) {
        self.tag(field, WireType::Bytes);
        encode_u64(&mut self.buf, v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a UTF-8 string field.
    pub fn put_str(&mut self, field: u32, v: &str) {
        self.put_bytes(field, v.as_bytes());
    }

    /// Write a nested message built by `f` as a length-delimited field.
    /// The nested scratch buffer comes from the thread-local pool, so deep
    /// message trees (profile → slice → slot → action → feature) encode
    /// without per-message allocation in the steady state.
    pub fn put_message(&mut self, field: u32, f: impl FnOnce(&mut WireWriter)) {
        let mut nested = WireWriter::pooled();
        f(&mut nested);
        self.put_bytes(field, &nested.buf);
        nested.recycle();
    }

    /// Write a packed list of unsigned varints.
    pub fn put_packed_u64(&mut self, field: u32, vals: &[u64]) {
        self.put_message(field, |w| {
            for v in vals {
                encode_u64(&mut w.buf, *v);
            }
        });
    }

    /// Write a packed list of signed varints (zigzag).
    pub fn put_packed_i64(&mut self, field: u32, vals: &[i64]) {
        self.put_message(field, |w| {
            for v in vals {
                encode_u64(&mut w.buf, zigzag_encode(*v));
            }
        });
    }

    /// Finish and take the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A decoded field payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldValue<'a> {
    Varint(u64),
    Fixed64(u64),
    Bytes(&'a [u8]),
}

impl<'a> FieldValue<'a> {
    /// Interpret as u64; errors on a bytes payload.
    pub fn as_u64(&self, field: u32) -> Result<u64, WireError> {
        match self {
            FieldValue::Varint(v) | FieldValue::Fixed64(v) => Ok(*v),
            FieldValue::Bytes(_) => Err(WireError::TypeMismatch {
                field,
                expected: WireType::Varint,
                actual: WireType::Bytes,
            }),
        }
    }

    /// Interpret as zigzag-encoded i64.
    pub fn as_i64(&self, field: u32) -> Result<i64, WireError> {
        Ok(zigzag_decode(self.as_u64(field)?))
    }

    /// Interpret as bool.
    pub fn as_bool(&self, field: u32) -> Result<bool, WireError> {
        Ok(self.as_u64(field)? != 0)
    }

    /// Interpret as a byte slice; errors on scalar payloads.
    pub fn as_bytes(&self, field: u32) -> Result<&'a [u8], WireError> {
        match self {
            FieldValue::Bytes(b) => Ok(b),
            _ => Err(WireError::TypeMismatch {
                field,
                expected: WireType::Bytes,
                actual: WireType::Varint,
            }),
        }
    }

    /// Decode a packed list of unsigned varints.
    pub fn as_packed_u64(&self, field: u32) -> Result<Vec<u64>, WireError> {
        let mut bytes = self.as_bytes(field)?;
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (v, n) = decode_u64(bytes)?;
            out.push(v);
            bytes = &bytes[n..];
        }
        Ok(out)
    }

    /// Decode a packed list of zigzag-encoded signed varints.
    pub fn as_packed_i64(&self, field: u32) -> Result<Vec<i64>, WireError> {
        Ok(self
            .as_packed_u64(field)?
            .into_iter()
            .map(zigzag_decode)
            .collect())
    }
}

/// Iterates tagged fields over a byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read the next `(field_number, value)` pair, or `None` at end of input.
    pub fn next_field(&mut self) -> Result<Option<(u32, FieldValue<'a>)>, WireError> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let (tag, n) = decode_u64(&self.buf[self.pos..])?;
        self.pos += n;
        let field = (tag >> 3) as u32;
        if field == 0 {
            return Err(WireError::ZeroFieldNumber);
        }
        let wt = WireType::from_bits(tag & 0x7)?;
        let value = match wt {
            WireType::Varint => {
                let (v, n) = decode_u64(&self.buf[self.pos..])?;
                self.pos += n;
                FieldValue::Varint(v)
            }
            WireType::Fixed64 => {
                let end = self.pos + 8;
                if end > self.buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut le = [0u8; 8];
                le.copy_from_slice(&self.buf[self.pos..end]);
                self.pos = end;
                FieldValue::Fixed64(u64::from_le_bytes(le))
            }
            WireType::Bytes => {
                let (len, n) = decode_u64(&self.buf[self.pos..])?;
                self.pos += n;
                let end = self
                    .pos
                    .checked_add(len as usize)
                    .ok_or(WireError::Truncated)?;
                if end > self.buf.len() {
                    return Err(WireError::Truncated);
                }
                let b = &self.buf[self.pos..end];
                self.pos = end;
                FieldValue::Bytes(b)
            }
        };
        Ok(Some((field, value)))
    }

    /// Drain all fields into a callback; unknown fields are the callback's
    /// business to ignore (they usually just fall through a `match _`).
    pub fn for_each(
        &mut self,
        mut f: impl FnMut(u32, FieldValue<'a>) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        while let Some((field, value)) = self.next_field()? {
            f(field, value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = WireWriter::new();
        w.put_u64(1, 42);
        w.put_i64(2, -7);
        w.put_fixed64(3, 0xdead_beef);
        w.put_bool(4, true);
        w.put_str(5, "alice");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_u64(f).unwrap()), (1, 42));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_i64(f).unwrap()), (2, -7));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_u64(f).unwrap()), (3, 0xdead_beef));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert!(v.as_bool(f).unwrap());
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(v.as_bytes(f).unwrap(), b"alice");
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn nested_messages() {
        let mut w = WireWriter::new();
        w.put_message(1, |inner| {
            inner.put_u64(1, 5);
            inner.put_message(2, |inner2| inner2.put_u64(1, 6));
        });
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let (_, v) = r.next_field().unwrap().unwrap();
        let mut inner = WireReader::new(v.as_bytes(1).unwrap());
        let (_, v1) = inner.next_field().unwrap().unwrap();
        assert_eq!(v1.as_u64(1).unwrap(), 5);
        let (_, v2) = inner.next_field().unwrap().unwrap();
        let mut inner2 = WireReader::new(v2.as_bytes(2).unwrap());
        let (_, v3) = inner2.next_field().unwrap().unwrap();
        assert_eq!(v3.as_u64(1).unwrap(), 6);
    }

    #[test]
    fn packed_lists() {
        let mut w = WireWriter::new();
        w.put_packed_u64(1, &[1, 128, 16_384]);
        w.put_packed_i64(2, &[-1, 0, 1, i64::MIN, i64::MAX]);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let (_, v) = r.next_field().unwrap().unwrap();
        assert_eq!(v.as_packed_u64(1).unwrap(), vec![1, 128, 16_384]);
        let (_, v) = r.next_field().unwrap().unwrap();
        assert_eq!(
            v.as_packed_i64(2).unwrap(),
            vec![-1, 0, 1, i64::MIN, i64::MAX]
        );
    }

    #[test]
    fn unknown_fields_are_skippable() {
        let mut w = WireWriter::new();
        w.put_u64(1, 10);
        w.put_bytes(99, b"future extension");
        w.put_fixed64(98, 1);
        w.put_u64(2, 20);
        let bytes = w.into_bytes();

        let mut got = Vec::new();
        WireReader::new(&bytes)
            .for_each(|f, v| {
                if f == 1 || f == 2 {
                    got.push(v.as_u64(f).unwrap());
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let mut w = WireWriter::new();
        w.put_u64(1, 10);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert!(matches!(
            v.as_bytes(f),
            Err(WireError::TypeMismatch { field: 1, .. })
        ));
    }

    #[test]
    fn truncated_inputs_error() {
        let mut w = WireWriter::new();
        w.put_bytes(1, &[0u8; 100]);
        let bytes = w.into_bytes();
        for cut in [1, 2, 50, bytes.len() - 1] {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.next_field().is_err(), "cut at {cut} must error");
        }

        let mut w = WireWriter::new();
        w.put_fixed64(1, 7);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..5]);
        assert_eq!(r.next_field(), Err(WireError::Truncated));
    }

    #[test]
    fn zero_field_number_rejected() {
        // Tag 0b00000000: field 0, varint.
        let bytes = [0x00u8, 0x01];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.next_field(), Err(WireError::ZeroFieldNumber));
    }

    #[test]
    fn unknown_wire_type_rejected() {
        // Tag with wire type 7.
        let bytes = [(1 << 3) | 7u8];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.next_field(), Err(WireError::UnknownWireType(7)));
    }

    #[test]
    fn huge_declared_length_does_not_overflow() {
        let mut bytes = Vec::new();
        encode_u64(&mut bytes, (1 << 3) | 2); // field 1, bytes
        encode_u64(&mut bytes, u64::MAX); // absurd length
        let mut r = WireReader::new(&bytes);
        assert!(r.next_field().is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_scalars_round_trip(
            u in any::<u64>(),
            i in any::<i64>(),
            f64v in any::<u64>(),
            blob in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut w = WireWriter::new();
            w.put_u64(1, u);
            w.put_i64(2, i);
            w.put_fixed64(3, f64v);
            w.put_bytes(4, &blob);
            let bytes = w.into_bytes();

            let mut r = WireReader::new(&bytes);
            let (_, v) = r.next_field().unwrap().unwrap();
            prop_assert_eq!(v.as_u64(1).unwrap(), u);
            let (_, v) = r.next_field().unwrap().unwrap();
            prop_assert_eq!(v.as_i64(2).unwrap(), i);
            let (_, v) = r.next_field().unwrap().unwrap();
            prop_assert_eq!(v.as_u64(3).unwrap(), f64v);
            let (_, v) = r.next_field().unwrap().unwrap();
            prop_assert_eq!(v.as_bytes(4).unwrap(), &blob[..]);
        }

        #[test]
        fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut r = WireReader::new(&bytes);
            // Drain until error or end; must not panic.
            while let Ok(Some(_)) = r.next_field() {}
        }
    }
}
